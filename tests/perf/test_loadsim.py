"""Tests for the closed-loop load simulator (small configurations for speed)."""

import pytest

from repro.perf.arrivals import PoissonArrivals
from repro.perf.costmodel import CostModel, DatabaseCosts, NetworkProfile
from repro.perf.loadsim import VoteCollectionLoadSimulator, sweep_vc_counts


def quick_run(num_vc=4, num_clients=100, model=None, votes=300, warmup=50, seed=1):
    simulator = VoteCollectionLoadSimulator(num_vc, num_clients, model or CostModel(), seed=seed)
    return simulator.run(target_votes=votes, warmup_votes=warmup)


class TestBasicBehaviour:
    def test_reports_requested_number_of_votes(self):
        result = quick_run(votes=200, warmup=20)
        assert result.votes_completed == 200

    def test_throughput_and_latency_positive(self):
        result = quick_run()
        assert result.throughput_ops > 0
        assert result.mean_latency_s > 0
        assert result.p95_latency_s >= result.median_latency_s

    def test_results_are_reproducible_for_a_seed(self):
        first = quick_run(seed=7)
        second = quick_run(seed=7)
        assert first.throughput_ops == pytest.approx(second.throughput_ops)
        assert first.mean_latency_s == pytest.approx(second.mean_latency_s)

    def test_as_row_contains_figure_columns(self):
        row = quick_run().as_row()
        assert set(row) == {"num_vc", "num_clients", "throughput_ops",
                            "mean_latency_s", "p50_latency_s", "p95_latency_s",
                            "p99_latency_s"}

    def test_percentiles_are_ordered(self):
        result = quick_run()
        assert result.p50_latency_s <= result.p95_latency_s <= result.p99_latency_s
        assert result.p50_latency_s == pytest.approx(result.median_latency_s, rel=0.05)

    def test_rejects_invalid_configurations(self):
        with pytest.raises(ValueError):
            VoteCollectionLoadSimulator(3, 10)
        with pytest.raises(ValueError):
            VoteCollectionLoadSimulator(4, 0)


class TestFigureShapes:
    """The qualitative claims of Figures 4 and 5, at reduced scale."""

    def test_throughput_declines_with_more_vc_nodes(self):
        results = {nv: quick_run(num_vc=nv, num_clients=200, votes=400) for nv in (4, 7, 10)}
        assert results[4].throughput_ops > results[7].throughput_ops > results[10].throughput_ops

    def test_latency_grows_with_more_vc_nodes(self):
        results = {nv: quick_run(num_vc=nv, num_clients=200, votes=400) for nv in (4, 10)}
        assert results[10].mean_latency_s > results[4].mean_latency_s

    def test_throughput_roughly_flat_in_client_count(self):
        low = quick_run(num_clients=200, votes=400)
        high = quick_run(num_clients=600, votes=900)
        assert high.throughput_ops == pytest.approx(low.throughput_ops, rel=0.25)

    def test_latency_grows_with_client_count(self):
        low = quick_run(num_clients=200, votes=400)
        high = quick_run(num_clients=600, votes=900)
        assert high.mean_latency_s > low.mean_latency_s

    def test_wan_latency_higher_but_throughput_similar(self):
        lan = quick_run(model=CostModel(network=NetworkProfile.lan()), num_clients=300, votes=500)
        wan = quick_run(model=CostModel(network=NetworkProfile.wan()), num_clients=300, votes=500)
        assert wan.mean_latency_s > lan.mean_latency_s
        assert wan.throughput_ops == pytest.approx(lan.throughput_ops, rel=0.30)

    def test_database_backed_throughput_declines_with_electorate(self):
        small = quick_run(
            model=CostModel(database=DatabaseCosts(), num_ballots=50_000_000, num_options=2),
            num_clients=100, votes=200,
        )
        large = quick_run(
            model=CostModel(database=DatabaseCosts(), num_ballots=250_000_000, num_options=2),
            num_clients=100, votes=200,
        )
        assert small.throughput_ops > large.throughput_ops

    def test_sweep_helper_covers_grid(self):
        results = sweep_vc_counts([4, 7], [50, 100], CostModel, target_votes=150)
        assert len(results) == 4
        assert {(r.num_vc, r.num_clients) for r in results} == {(4, 50), (4, 100), (7, 50), (7, 100)}


class TestOpenLoop:
    """The arrival-driven mode behind the voting-throughput benchmark."""

    def open_run(self, rate=50.0, depth=None, seed=3, duration=20.0):
        times = PoissonArrivals(rate_per_s=rate, seed=seed).times(duration)
        simulator = VoteCollectionLoadSimulator(4, 1, CostModel(), seed=seed)
        return simulator.run_open_loop(times, admission_depth=depth, arrival_name="poisson")

    def test_underloaded_run_sheds_nothing(self):
        result = self.open_run(rate=50.0, depth=64)
        assert result.shed == 0
        assert result.completed == result.offered == result.admitted
        assert result.throughput_ops > 0

    def test_counters_reconcile(self):
        result = self.open_run(rate=3000.0, depth=4, duration=3.0)
        assert result.admitted == result.offered - result.shed
        assert result.completed == result.admitted
        assert 0.0 <= result.shed_rate <= 1.0

    def test_overload_sheds_with_bounded_depth(self):
        bounded = self.open_run(rate=3000.0, depth=4, duration=3.0)
        unbounded = self.open_run(rate=3000.0, depth=None, duration=3.0)
        assert bounded.shed > 0
        assert unbounded.shed == 0
        assert bounded.peak_in_flight <= 4
        # Backpressure trades completed votes for bounded latency.
        assert bounded.p99_latency_s < unbounded.p99_latency_s

    def test_open_loop_as_row_columns(self):
        row = self.open_run().as_row()
        assert set(row) == {"num_vc", "arrival_process", "offered", "admitted",
                            "shed", "shed_rate", "throughput_ops", "p50_latency_s",
                            "p95_latency_s", "p99_latency_s", "peak_in_flight"}

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            self.open_run(depth=0)
