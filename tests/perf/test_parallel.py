"""Tests for the chunked process-pool scheduler."""

import operator

import pytest

from repro.perf.parallel import (
    DEFAULT_MAX_CHUNK,
    ParallelConfig,
    chunk_seeds,
    parallel_chunk_map,
    parallel_map,
    parallel_reduce,
    split_chunks,
)


def square(value):
    """Module-level so the process-pool path can pickle it."""
    return value * value


def chunk_sum_with_seed(chunk, seed):
    """Module-level chunk function recording the seed it was handed."""
    return (sum(chunk), seed)


class TestConfig:
    def test_one_worker_is_always_serial(self):
        config = ParallelConfig(workers=1)
        assert config.use_serial(1_000_000)

    def test_small_inputs_fall_back_to_serial(self):
        config = ParallelConfig(workers=8, serial_threshold=64)
        assert config.use_serial(63)
        assert not config.use_serial(64)

    def test_none_workers_means_all_cores(self):
        assert ParallelConfig(workers=None).resolved_workers() >= 1

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0).resolved_workers()

    def test_auto_chunk_size_is_bounded_and_machine_independent(self):
        config = ParallelConfig(workers=None)
        assert config.resolved_chunk_size(10_000) == DEFAULT_MAX_CHUNK
        assert config.resolved_chunk_size(10) == 10

    def test_explicit_chunk_size_wins(self):
        assert ParallelConfig(chunk_size=7).resolved_chunk_size(10_000) == 7
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0).resolved_chunk_size(10)


class TestChunking:
    def test_split_chunks_covers_everything_in_order(self):
        chunks = split_chunks(list(range(10)), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_chunk_seeds_are_deterministic_and_distinct(self):
        seeds = chunk_seeds(42, 8)
        assert seeds == chunk_seeds(42, 8)
        assert len(set(seeds)) == 8
        assert chunk_seeds(43, 8) != seeds

    def test_seeds_do_not_depend_on_worker_count(self):
        """Chunk boundaries come from chunk_size, seeds from the index, so a
        re-run with more workers sees identical (chunk, seed) pairs."""
        items = list(range(40))
        serial = parallel_chunk_map(
            chunk_sum_with_seed, items, ParallelConfig(workers=1, chunk_size=8, base_seed=3)
        )
        pooled = parallel_chunk_map(
            chunk_sum_with_seed,
            items,
            ParallelConfig(workers=2, chunk_size=8, serial_threshold=1, base_seed=3),
        )
        assert serial == pooled

    def test_default_base_seed_is_unpredictable(self):
        """Without an explicit base_seed every job draws fresh chunk seeds
        (the secure default: batching exponents must not be predictable)."""
        items = list(range(16))
        config = ParallelConfig(workers=1, chunk_size=4)
        first = parallel_chunk_map(chunk_sum_with_seed, items, config)
        second = parallel_chunk_map(chunk_sum_with_seed, items, config)
        assert [s for s, _ in first] == [s for s, _ in second]  # same chunk sums
        assert [seed for _, seed in first] != [seed for _, seed in second]


class TestMapAndReduce:
    def test_serial_map_preserves_order(self):
        assert parallel_map(square, range(20)) == [v * v for v in range(20)]

    def test_empty_input(self):
        assert parallel_map(square, []) == []
        assert parallel_chunk_map(chunk_sum_with_seed, []) == []

    def test_process_pool_map_matches_serial(self):
        items = list(range(100))
        expected = parallel_map(square, items, ParallelConfig(workers=1))
        pooled = parallel_map(
            square, items, ParallelConfig(workers=2, serial_threshold=1, chunk_size=25)
        )
        assert pooled == expected

    def test_reduce_matches_serial_fold(self):
        items = list(range(1, 50))
        assert parallel_reduce(operator.add, items) == sum(items)
        assert parallel_reduce(
            operator.add, items, ParallelConfig(workers=2, serial_threshold=1, chunk_size=7)
        ) == sum(items)

    def test_reduce_single_item(self):
        assert parallel_reduce(operator.add, [99]) == 99

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            parallel_reduce(operator.add, [])
