"""Tests for the chunked process-pool scheduler and the warm pool."""

import operator
import os
import time

import pytest

from repro.perf.parallel import (
    DEFAULT_MAX_CHUNK,
    ParallelConfig,
    PoolTaskError,
    WarmProcessPool,
    chunk_seeds,
    parallel_chunk_map,
    parallel_map,
    parallel_reduce,
    split_chunks,
    submit_chunksize,
)


def square(value):
    """Module-level so the process-pool path can pickle it."""
    return value * value


def chunk_sum_with_seed(chunk, seed):
    """Module-level chunk function recording the seed it was handed."""
    return (sum(chunk), seed)


_WARMED = None


def _warm(value):
    """Module-level pool initializer recording its argument per worker."""
    global _WARMED
    _WARMED = value


def read_warmed(task):
    """Returns what the initializer installed in this worker, plus the task."""
    return (_WARMED, task)


def slow_square(value):
    time.sleep(0.01)
    return value * value


def fail_on_seven(value):
    if value == 7:
        raise ValueError("seven is right out")
    return value


class TestConfig:
    def test_one_worker_is_always_serial(self):
        config = ParallelConfig(workers=1)
        assert config.use_serial(1_000_000)

    def test_small_inputs_fall_back_to_serial(self):
        config = ParallelConfig(workers=8, serial_threshold=64)
        assert config.use_serial(63)
        assert not config.use_serial(64)

    def test_none_workers_means_all_cores(self):
        assert ParallelConfig(workers=None).resolved_workers() >= 1

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0).resolved_workers()

    def test_auto_chunk_size_is_bounded_and_machine_independent(self):
        config = ParallelConfig(workers=None)
        assert config.resolved_chunk_size(10_000) == DEFAULT_MAX_CHUNK
        assert config.resolved_chunk_size(10) == 10

    def test_explicit_chunk_size_wins(self):
        assert ParallelConfig(chunk_size=7).resolved_chunk_size(10_000) == 7
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0).resolved_chunk_size(10)


class TestChunking:
    def test_split_chunks_covers_everything_in_order(self):
        chunks = split_chunks(list(range(10)), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_chunk_seeds_are_deterministic_and_distinct(self):
        seeds = chunk_seeds(42, 8)
        assert seeds == chunk_seeds(42, 8)
        assert len(set(seeds)) == 8
        assert chunk_seeds(43, 8) != seeds

    def test_seeds_do_not_depend_on_worker_count(self):
        """Chunk boundaries come from chunk_size, seeds from the index, so a
        re-run with more workers sees identical (chunk, seed) pairs."""
        items = list(range(40))
        serial = parallel_chunk_map(
            chunk_sum_with_seed, items, ParallelConfig(workers=1, chunk_size=8, base_seed=3)
        )
        pooled = parallel_chunk_map(
            chunk_sum_with_seed,
            items,
            ParallelConfig(workers=2, chunk_size=8, serial_threshold=1, base_seed=3),
        )
        assert serial == pooled

    def test_default_base_seed_is_unpredictable(self):
        """Without an explicit base_seed every job draws fresh chunk seeds
        (the secure default: batching exponents must not be predictable)."""
        items = list(range(16))
        config = ParallelConfig(workers=1, chunk_size=4)
        first = parallel_chunk_map(chunk_sum_with_seed, items, config)
        second = parallel_chunk_map(chunk_sum_with_seed, items, config)
        assert [s for s, _ in first] == [s for s, _ in second]  # same chunk sums
        assert [seed for _, seed in first] != [seed for _, seed in second]


class TestMapAndReduce:
    def test_serial_map_preserves_order(self):
        assert parallel_map(square, range(20)) == [v * v for v in range(20)]

    def test_empty_input(self):
        assert parallel_map(square, []) == []
        assert parallel_chunk_map(chunk_sum_with_seed, []) == []

    def test_process_pool_map_matches_serial(self):
        items = list(range(100))
        expected = parallel_map(square, items, ParallelConfig(workers=1))
        pooled = parallel_map(
            square, items, ParallelConfig(workers=2, serial_threshold=1, chunk_size=25)
        )
        assert pooled == expected

    def test_reduce_matches_serial_fold(self):
        items = list(range(1, 50))
        assert parallel_reduce(operator.add, items) == sum(items)
        assert parallel_reduce(
            operator.add, items, ParallelConfig(workers=2, serial_threshold=1, chunk_size=7)
        ) == sum(items)

    def test_reduce_single_item(self):
        assert parallel_reduce(operator.add, [99]) == 99

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            parallel_reduce(operator.add, [])


class TestSubmitChunksize:
    def test_four_batches_per_worker(self):
        assert submit_chunksize(80, 2) == 10
        assert submit_chunksize(400, 4) == 25

    def test_never_below_one(self):
        assert submit_chunksize(3, 8) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            submit_chunksize(0, 2)
        with pytest.raises(ValueError):
            submit_chunksize(10, 0)


class TestWarmProcessPool:
    def test_lazy_start_and_shutdown(self):
        pool = WarmProcessPool(workers=1)
        assert not pool.started
        assert pool.submit(square, 6).result() == 36
        assert pool.started
        pool.shutdown()
        assert not pool.started
        # usable again after shutdown: the next call re-warms fresh workers
        assert pool.submit(square, 7).result() == 49
        pool.shutdown()

    def test_initializer_runs_once_per_worker_not_per_task(self):
        """The warm state is installed by the initializer and visible to
        every task that lands on the worker afterwards."""
        with WarmProcessPool(workers=1, initializer=_warm, initargs=("hot",)) as pool:
            results = dict(pool.imap_unordered(read_warmed, range(5)))
        assert results == {task: ("hot", task) for task in range(5)}

    def test_initargs_exposed_as_fingerprint(self):
        pool = WarmProcessPool(workers=1, initializer=_warm, initargs=["a", 2])
        assert pool.initargs == ("a", 2)

    def test_imap_unordered_returns_every_pair(self):
        with WarmProcessPool(workers=2) as pool:
            pairs = dict(pool.imap_unordered(square, range(20)))
        assert pairs == {task: task * task for task in range(20)}

    def test_imap_unordered_empty(self):
        with WarmProcessPool(workers=1) as pool:
            assert list(pool.imap_unordered(square, [])) == []
            assert pool.peak_inflight == 0

    def test_max_inflight_bounds_pending_tasks(self):
        with WarmProcessPool(workers=2) as pool:
            list(pool.imap_unordered(slow_square, range(12), max_inflight=2))
            assert pool.peak_inflight == 2
            list(pool.imap_unordered(slow_square, range(12), max_inflight=1))
            assert pool.peak_inflight == 1

    def test_default_inflight_is_twice_the_workers(self):
        with WarmProcessPool(workers=2) as pool:
            list(pool.imap_unordered(slow_square, range(12)))
            assert pool.peak_inflight <= 4

    def test_worker_exception_names_the_task(self):
        with WarmProcessPool(workers=2) as pool:
            with pytest.raises(PoolTaskError) as excinfo:
                list(pool.imap_unordered(fail_on_seven, range(10), max_inflight=2))
            assert excinfo.value.task == 7
            assert isinstance(excinfo.value.__cause__, ValueError)
            # the pool survives the failure
            assert dict(pool.imap_unordered(square, [3])) == {3: 9}

    def test_resolves_default_worker_count(self):
        pool = WarmProcessPool()
        assert pool.workers == max(os.cpu_count() or 1, 1)
