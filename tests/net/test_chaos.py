"""Tests for timed fault injection: adversary precision, crash/recovery, chaos.

Covers the two satellite regressions (partition healing must not lift
independent link blocks; ``NetworkConditions.replace`` must keep the live RNG
stream), the simulator's crash/recovery semantics, and the
:class:`~repro.net.chaos.ChaosController`'s network-fault scheduling.
"""

import pytest

from repro.api.spec import ClockSkew, FaultPlan, LossBurst, Partition
from repro.net.adversary import Adversary, NetworkConditions
from repro.net.chaos import ChaosController
from repro.net.simulator import Network, SimNode


class EchoNode(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []
        self.timer_fired = 0

    def on_message(self, message):
        self.received.append(message)

    def arm_timer(self, delay):
        self.set_timer(delay, self._on_timer)

    def _on_timer(self):
        self.timer_fired += 1


def make_network(*node_ids, adversary=None, conditions=None):
    network = Network(
        conditions=conditions or NetworkConditions(base_latency=0.001, seed=1),
        adversary=adversary,
    )
    nodes = [EchoNode(node_id) for node_id in node_ids]
    for node in nodes:
        network.register(node)
    return (network, *nodes)


class TestHealPartitionPrecision:
    """Satellite regression: healing a partition must not lift other blocks."""

    def test_heal_partition_keeps_independent_blocks(self):
        adversary = Adversary()
        adversary.block_link("a", "b")
        adversary.partition(["a"], ["c"])
        adversary.heal_partition()
        assert ("a", "b") in adversary.blocked_links
        assert ("a", "c") not in adversary.blocked_links
        assert ("c", "a") not in adversary.blocked_links

    def test_partition_does_not_adopt_existing_blocks(self):
        adversary = Adversary()
        adversary.block_link("a", "b")
        installed = adversary.partition(["a"], ["b", "c"])
        # The pre-existing block is not part of the partition's link set...
        assert ("a", "b") not in installed
        adversary.heal_partition()
        # ...so healing leaves it in force.
        assert ("a", "b") in adversary.blocked_links
        assert adversary.partition_links == set()

    def test_heal_links_heals_exactly_one_partition(self):
        adversary = Adversary()
        first = adversary.partition(["a"], ["b"])
        second = adversary.partition(["c"], ["d"])
        adversary.heal_links(first)
        assert ("a", "b") not in adversary.blocked_links
        assert ("c", "d") in adversary.blocked_links
        adversary.heal_links(second)
        assert adversary.blocked_links == set()

    def test_unblock_link_clears_partition_bookkeeping(self):
        adversary = Adversary()
        adversary.partition(["a"], ["b"])
        adversary.unblock_link("a", "b")
        assert ("a", "b") not in adversary.partition_links


class TestConditionsReplace:
    """Satellite regression: replace() must continue the live RNG stream."""

    def test_replace_keeps_rng_stream(self):
        # Reference: an uninterrupted conditions object.
        reference = NetworkConditions(jitter=0.5, seed=9)
        burn_in = [reference.sample_latency() for _ in range(5)]
        expected = [reference.sample_latency() for _ in range(5)]

        # Same seed, same burn-in, then a replace() mid-stream.
        conditions = NetworkConditions(jitter=0.5, seed=9)
        assert [conditions.sample_latency() for _ in range(5)] == burn_in
        swapped = conditions.replace(drop_rate=0.3)
        assert swapped.drop_rate == 0.3
        assert [swapped.sample_latency() for _ in range(5)] == expected

    def test_dataclasses_replace_would_rewind(self):
        # Documents the bug replace() exists to avoid: the stdlib copy
        # re-seeds and replays the stream from the start.
        import dataclasses

        conditions = NetworkConditions(jitter=0.5, seed=9)
        first = conditions.sample_latency()
        rewound = dataclasses.replace(conditions, drop_rate=0.3)
        assert rewound.sample_latency() == first

    def test_replace_keeps_unchanged_fields(self):
        conditions = NetworkConditions(base_latency=0.02, jitter=0.1, seed=3)
        swapped = conditions.replace(drop_rate=0.5)
        assert swapped.base_latency == 0.02
        assert swapped.jitter == 0.1
        assert swapped.seed == 3


class TestCrashRecovery:
    def test_crashed_node_receives_nothing(self):
        network, a, b = make_network("a", "b")
        network.crash("b")
        a.send("b", "lost")
        network.run_until_idle()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_recovered_node_receives_again(self):
        network, a, b = make_network("a", "b")
        network.crash("b")
        a.send("b", "lost")
        network.run_until_idle()
        network.recover("b")
        a.send("b", "back")
        network.run_until_idle()
        assert [m.payload for m in b.received] == ["back"]

    def test_crashed_node_cannot_send(self):
        network, a, b = make_network("a", "b")
        network.crash("a")
        a.send("b", "from-the-grave")
        network.run_until_idle()
        assert b.received == []

    def test_owned_timer_is_suppressed_while_crashed(self):
        network, a, b = make_network("a", "b")
        a.arm_timer(1.0)
        network.crash("a")
        network.run_until_idle()
        assert a.timer_fired == 0
        assert network.events_suppressed == 1

    def test_timer_fires_after_recovery(self):
        network, a, b = make_network("a", "b")
        a.arm_timer(5.0)
        network.crash("a")
        network.schedule(1.0, lambda: network.recover("a"), description="recover")
        network.run_until_idle()
        assert a.timer_fired == 1

    def test_in_flight_message_survives_a_crash_window(self):
        # Sent before the crash, delivered after recovery: the frame was on
        # the wire the whole time.
        network, a, b = make_network("a", "b")
        a.send("b", "slow")
        network.crash("b")
        network.recover("b")
        network.run_until_idle()
        assert [m.payload for m in b.received] == ["slow"]

    def test_crash_unknown_node_raises(self):
        network, *_ = make_network("a")
        with pytest.raises(ValueError):
            network.crash("ghost")

    def test_is_crashed(self):
        network, a, _ = make_network("a", "b")
        assert not network.is_crashed("a")
        network.crash("a")
        assert network.is_crashed("a")


class TestChaosControllerNetworkFaults:
    """Partition, loss-burst and clock-skew scheduling on a plain network."""

    def controller(self, plan, network):
        return ChaosController(plan, network, vote_collectors=[])

    def test_partition_blocks_then_heals(self):
        plan = FaultPlan(
            events=(Partition(t_start=1.0, t_end=2.0, groups=(("a",), ("b",))),)
        )
        network, a, b = make_network("a", "b")
        controller = self.controller(plan, network)
        controller.install()
        network.schedule(1.5, lambda: a.send("b", "blocked"))
        network.schedule(2.5, lambda: a.send("b", "healed"))
        network.run_until_idle()
        assert [m.payload for m in b.received] == ["healed"]
        assert network.adversary.blocked_links == set()
        kinds = [entry["kind"] for entry in controller.log]
        assert kinds == ["partition", "heal"]

    def test_partition_heal_preserves_independent_block(self):
        plan = FaultPlan(
            events=(Partition(t_start=1.0, t_end=2.0, groups=(("a",), ("b",))),)
        )
        adversary = Adversary()
        adversary.block_link("a", "b")
        network, a, b = make_network("a", "b", adversary=adversary)
        controller = self.controller(plan, network)
        controller.install()
        network.run_until_idle()
        assert ("a", "b") in adversary.blocked_links

    def test_multi_group_partition_blocks_all_cross_links(self):
        plan = FaultPlan(
            events=(
                Partition(t_start=1.0, t_end=2.0, groups=(("a",), ("b",), ("c",))),
            )
        )
        network, a, b, c = make_network("a", "b", "c")
        controller = self.controller(plan, network)
        controller.install()
        network.run(until=1.5)
        assert len(network.adversary.blocked_links) == 6
        network.run_until_idle()
        assert network.adversary.blocked_links == set()

    def test_loss_burst_overrides_and_restores_drop_rate(self):
        plan = FaultPlan(events=(LossBurst(t_start=1.0, t_end=2.0, rate=0.4),))
        network, a, b = make_network("a", "b")
        controller = self.controller(plan, network)
        controller.install()
        network.run(until=1.5)
        assert network.conditions.drop_rate == 0.4
        network.run_until_idle()
        assert network.conditions.drop_rate == 0.0

    def test_loss_burst_keeps_rng_stream(self):
        # The same seeded network with and without a zero-width rate change
        # must sample identical latencies afterwards.
        def latencies(with_burst):
            network, a, b = make_network(
                "a", "b", conditions=NetworkConditions(jitter=0.01, seed=4)
            )
            if with_burst:
                plan = FaultPlan(events=(LossBurst(t_start=0.5, t_end=0.6, rate=0.9),))
                controller = self.controller(plan, network)
                controller.install()
            for i in range(10):
                network.schedule(1.0 + i, lambda: a.send("b", "x"))
            network.run_until_idle()
            return [m.deliver_time - m.send_time for m in b.received]

        assert latencies(with_burst=False) == latencies(with_burst=True)

    def test_clock_skew_sets_drift(self):
        plan = FaultPlan(events=(ClockSkew(node="a", drift=0.25, t=1.0),))
        network, a, b = make_network("a", "b")
        controller = self.controller(plan, network)
        controller.install()
        network.run_until_idle()
        assert network.clocks.clock_of("a").drift == 0.25
        assert a.now == pytest.approx(network.now + 0.25)

    def test_install_twice_raises(self):
        network, *_ = make_network("a")
        controller = self.controller(FaultPlan(), network)
        controller.install()
        with pytest.raises(RuntimeError):
            controller.install()

    def test_report_shape(self):
        plan = FaultPlan(events=(LossBurst(t_start=1.0, t_end=2.0, rate=0.4),))
        network, *_ = make_network("a", "b")
        controller = self.controller(plan, network)
        controller.install()
        network.run_until_idle()
        report = controller.report()
        assert report["expect_failure"] is False
        assert report["planned_events"] == [event.to_dict() for event in plan.events]
        assert [a["kind"] for a in report["actions"]] == ["loss-burst", "loss-restore"]
        assert report["still_crashed"] == []
