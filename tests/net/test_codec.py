"""Tests for the canonical wire format (frame layout, registry, strictness)."""

import pytest

from repro.consensus.batching import (
    BatchEnvelope,
    SuperblockEcho,
    SuperblockReady,
    SuperblockSend,
)
from repro.consensus.interfaces import Aux, BVal, Finish
from repro.core.messages import (
    Announce,
    BallotStateEntry,
    Endorse,
    Endorsement,
    MskShareUpload,
    RecoverRequest,
    RecoverResponse,
    UniquenessCertificate,
    VcStateSnapshot,
    VotePending,
    VoteReceipt,
    VoteRejected,
    VoteRequest,
    VoteSetUpload,
    VscBatch,
    VscEnvelope,
)
from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.registry import get_group
from repro.crypto.pedersen_vss import PedersenShare
from repro.shard.records import GlobalCommitRecord, ShardCommitRecord
from repro.crypto.shamir import Share, SignedShare, SigningDealer
from repro.crypto.signatures import SchnorrSignature, SignatureScheme
from repro.crypto.utils import RandomSource
from repro.net.codec import (
    FRAME_HEADER_LEN,
    FRAME_OVERHEAD,
    MAGIC,
    MessageCodec,
    WireFormatError,
    default_codec,
    signing_bytes,
)


@pytest.fixture(scope="module")
def codec():
    return MessageCodec()


@pytest.fixture(scope="module")
def signature():
    scheme = SignatureScheme()
    keys = scheme.keygen(RandomSource(3))
    return scheme.sign(keys, b"wire-test", RandomSource(4))


@pytest.fixture(scope="module")
def sample_messages(signature):
    """One instance of every registered protocol payload."""
    endorsement = Endorsement(7, b"code-bytes", "VC-1", signature)
    ucert = UniquenessCertificate(7, b"code-bytes", (endorsement,))
    signed_share = SignedShare(Share(2, (1 << 200) + 17), b"receipt|7|A|0", signature)
    group = get_group("secp256k1")
    scheme = OptionEncodingScheme(2, group.power_g(5), group)
    commitment, _ = scheme.commit_option(1, RandomSource(9))
    shard_record = ShardCommitRecord(
        shard_id=0,
        serial_lo=0,
        serial_hi=100,
        ballots_registered=100,
        ballots_cast=73,
        commitment=commitment,
        vote_set_digest=b"\x11" * 32,
        sender="shard-0",
    )
    return [
        VoteRequest(7, b"code-bytes", "V-0"),
        VoteReceipt(7, b"code-bytes", b"\x00" * 8),
        VoteRejected(7, b"code-bytes", "outside voting hours"),
        Endorse(7, b"code-bytes"),
        endorsement,
        ucert,
        VotePending(7, b"code-bytes", signed_share, ucert, "VC-2"),
        Announce(7, b"code-bytes", ucert, "VC-0"),
        Announce(8, None, None, "VC-0"),
        RecoverRequest(7, "VC-3"),
        RecoverResponse(7, b"code-bytes", ucert, "VC-3"),
        VscEnvelope(BVal("7", 1, 0), "VC-0"),
        VscBatch(
            BatchEnvelope((BVal("7", 0, 1), Aux("7", 0, 1), Finish("7", 1))), "VC-1"
        ),
        VoteSetUpload(((7, b"code-bytes"), (9, b"other")), "VC-2"),
        MskShareUpload(signed_share, "VC-2"),
        BallotStateEntry(
            7, "voted", b"code-bytes", b"code-bytes", b"\x00" * 8, ucert,
            (("VC-1", signed_share),),
        ),
        VcStateSnapshot(
            "VC-0",
            True,
            (
                BallotStateEntry(7, "voted", b"code-bytes", None, None, None, ()),
                BallotStateEntry(9, "not-voted", None, b"other", None, None, ()),
            ),
        ),
        BVal("sb|0", 2, 1),
        Aux("12", 0, 0),
        Finish("12", 1),
        SuperblockSend("sb|0", "VC-0", (1, 0, 1, 1)),
        SuperblockEcho("sb|0", "VC-1", (1, 0, 1, 1)),
        SuperblockReady("sb|0", "VC-2", (1, 0, 1, 1)),
        BatchEnvelope((Aux("3", 1, 1), SuperblockSend("sb|1", "VC-0", (0, 1)))),
        signature,
        Share(1, 42),
        SignedShare(Share(1, 42), b"ctx", signature),
        PedersenShare(3, 11, 29),
        commitment.ciphertexts[0],
        commitment,
        shard_record,
        GlobalCommitRecord(
            election_id="codec-test",
            num_shards=1,
            total_cast=73,
            combined=commitment,
            shard_digests=(b"\x22" * 32,),
        ),
    ]


class TestRoundTrip:
    def test_every_registered_type_round_trips(self, codec, sample_messages):
        for message in sample_messages:
            frame = codec.encode(message)
            assert codec.decode(frame) == message

    def test_sample_covers_the_whole_registry(self, codec, sample_messages):
        sampled = {type(message) for message in sample_messages}
        assert sampled == set(codec.registered_types)

    def test_encoding_is_deterministic(self, codec, sample_messages):
        for message in sample_messages:
            assert codec.encode(message) == codec.encode(message)

    def test_signature_without_commitment_round_trips(self, codec):
        bare = SchnorrSignature(12345, 67890, None)
        assert codec.decode(codec.encode(bare)) == bare

    def test_ec_group_elements_round_trip(self):
        group = get_group("secp256k1")
        scheme = SignatureScheme(group)
        keys = scheme.keygen(RandomSource(5))
        sig = scheme.sign(keys, b"ec", RandomSource(6))
        codec = MessageCodec(group=group)
        assert codec.decode(codec.encode(sig)) == sig
        # The group-less default codec infers the backend from the prefix.
        assert default_codec().decode(codec.encode(sig)) == sig


class TestStrictDecoding:
    def test_unknown_tag_rejected(self, codec):
        frame = bytearray(codec.encode(Endorse(1, b"x")))
        frame[3:5] = (0xFF, 0xFF)  # tag field
        with pytest.raises(WireFormatError):
            codec.decode(bytes(frame))

    def test_every_single_byte_flip_is_rejected(self, codec):
        frame = codec.encode(Endorse(1, b"x"))
        for index in range(len(frame)):
            corrupted = bytearray(frame)
            corrupted[index] ^= 0x01
            with pytest.raises(WireFormatError):
                codec.decode(bytes(corrupted))

    def test_truncation_rejected_at_every_length(self, codec):
        frame = codec.encode(VoteRequest(1, b"code", "V-0"))
        for length in range(len(frame)):
            with pytest.raises(WireFormatError):
                codec.decode(frame[:length])

    def test_trailing_garbage_rejected(self, codec):
        frame = codec.encode(Endorse(1, b"x"))
        with pytest.raises(WireFormatError):
            codec.decode(frame + b"\x00")

    def test_bad_magic_rejected(self, codec):
        frame = codec.encode(Endorse(1, b"x"))
        with pytest.raises(WireFormatError):
            codec.decode(b"XX" + frame[2:])

    def test_unsupported_version_rejected(self, codec):
        frame = bytearray(codec.encode(Endorse(1, b"x")))
        frame[2] = 99
        with pytest.raises(WireFormatError):
            codec.decode(bytes(frame))

    def test_unregistered_payload_rejected(self, codec):
        with pytest.raises(WireFormatError):
            codec.encode(object())

    def test_embedded_type_must_match_field(self, codec):
        # Hand-build a VscEnvelope frame whose consensus slot holds a
        # VoteRequest: the per-field type check must reject it even though
        # framing, lengths and checksum are all valid.
        import zlib

        body = bytearray()
        codec.encode_embedded(VoteRequest(1, b"x", "V-0"), body)
        body += len(b"VC-0").to_bytes(4, "big") + b"VC-0"  # sender vstr
        frame = bytearray(MAGIC)
        frame += bytes([1])  # version
        frame += codec.tag_of(VscEnvelope).to_bytes(2, "big")
        frame += len(body).to_bytes(4, "big")
        frame += body
        frame += zlib.crc32(bytes(frame)).to_bytes(4, "big")
        with pytest.raises(WireFormatError):
            codec.decode(bytes(frame))

    def test_frame_remainder_length(self, codec):
        frame = codec.encode(Endorse(1, b"x"))
        header = frame[:FRAME_HEADER_LEN]
        assert MessageCodec.frame_remainder_length(header) == len(frame) - FRAME_HEADER_LEN
        with pytest.raises(WireFormatError):
            MessageCodec.frame_remainder_length(b"XX" + header[2:])

    def test_frame_overhead_constant(self, codec):
        # magic + version + tag + length + crc32
        assert FRAME_OVERHEAD == 13
        assert codec.encode(Finish("1", 0)).startswith(MAGIC)


class TestRegistry:
    def test_duplicate_tag_rejected(self):
        codec = MessageCodec()
        with pytest.raises(ValueError):
            codec.register(codec.tag_of(Endorse), int, lambda c, o, b: None, lambda c, r: 0)

    def test_duplicate_type_rejected(self):
        codec = MessageCodec()
        with pytest.raises(ValueError):
            codec.register(0x1234, Endorse, lambda c, o, b: None, lambda c, r: 0)

    def test_custom_type_registration(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Ping:
            nonce: int

        codec = MessageCodec()
        codec.register(
            0x7000,
            Ping,
            lambda c, obj, out: out.extend(obj.nonce.to_bytes(4, "big")),
            lambda c, r: Ping(int.from_bytes(r.take(4), "big")),
        )
        assert codec.decode(codec.encode(Ping(77))) == Ping(77)


class TestSigningBytes:
    def test_deterministic(self):
        assert signing_bytes(b"d", 1, "x", b"y") == signing_bytes(b"d", 1, "x", b"y")

    def test_domain_separation(self):
        assert signing_bytes(b"endorse", 1) != signing_bytes(b"dealer-share", 1)

    def test_no_concatenation_ambiguity(self):
        # The old b"|"-joined format could not distinguish these splits.
        assert signing_bytes(b"d", b"a|b", b"c") != signing_bytes(b"d", b"a", b"b|c")
        assert signing_bytes(b"d", b"ab", b"c") != signing_bytes(b"d", b"a", b"bc")

    def test_typed_parts_do_not_collide(self):
        assert signing_bytes(b"d", 1) != signing_bytes(b"d", "1")
        assert signing_bytes(b"d", b"1") != signing_bytes(b"d", "1")

    def test_objects_use_registered_encodings(self, signature):
        share = Share(1, 5)
        one = signing_bytes(b"d", share)
        two = signing_bytes(b"d", Share(1, 6))
        assert one != two

    def test_dealer_share_signatures_use_canonical_encoding(self):
        dealer = SigningDealer(2, 3)
        (share, *_rest) = dealer.deal(999, b"ctx|with|pipes")
        assert SigningDealer.verify_share(dealer.scheme, dealer.public_key, share)
        # Moving a byte between context and share payload must not verify.
        tampered = SignedShare(share.share, b"ctx|with|pipes2", share.signature)
        assert not SigningDealer.verify_share(dealer.scheme, dealer.public_key, tampered)
