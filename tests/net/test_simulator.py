"""Tests for the discrete-event network simulator."""

import pytest

from repro.net.adversary import Adversary, NetworkConditions
from repro.net.channels import Message
from repro.net.simulator import Network, SimNode


class EchoNode(SimNode):
    """Test node that records everything it receives and can reply."""

    def __init__(self, node_id, reply_to=None):
        super().__init__(node_id)
        self.received = []
        self.reply_to = reply_to

    def on_message(self, message: Message) -> None:
        self.received.append(message)
        if self.reply_to is not None:
            self.send(self.reply_to, f"echo:{message.payload}")


def make_network(**kwargs):
    network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1), **kwargs)
    a, b = EchoNode("a"), EchoNode("b")
    network.register(a)
    network.register(b)
    return network, a, b


class TestDelivery:
    def test_message_is_delivered(self):
        network, a, b = make_network()
        a.send("b", "hello")
        network.run_until_idle()
        assert [m.payload for m in b.received] == ["hello"]

    def test_delivery_advances_global_clock(self):
        network, a, b = make_network()
        a.send("b", "hello")
        network.run_until_idle()
        assert network.now > 0

    def test_broadcast_reaches_every_receiver(self):
        network, a, b = make_network()
        c = EchoNode("c")
        network.register(c)
        a.broadcast(["b", "c", "a"], "ping")
        network.run_until_idle()
        assert len(b.received) == 1 and len(c.received) == 1 and len(a.received) == 1

    def test_send_to_unknown_node_is_dropped_silently(self):
        network, a, b = make_network()
        a.send("ghost", "hello")
        network.run_until_idle()
        assert b.received == []

    def test_reply_chain(self):
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1))
        a = EchoNode("a")
        b = EchoNode("b", reply_to="a")
        network.register(a)
        network.register(b)
        a.send("b", "ping")
        network.run_until_idle()
        assert [m.payload for m in a.received] == ["echo:ping"]

    def test_duplicate_node_registration_rejected(self):
        network, a, b = make_network()
        with pytest.raises(ValueError):
            network.register(EchoNode("a"))

    def test_statistics_are_tracked(self):
        network, a, b = make_network()
        a.send("b", "one")
        a.send("b", "two")
        network.run_until_idle()
        assert network.messages_sent == 2
        assert network.messages_delivered == 2
        assert network.messages_dropped == 0


class TestTimersAndOrdering:
    def test_timers_fire_in_order(self):
        network, a, b = make_network()
        fired = []
        a.set_timer(0.5, lambda: fired.append("late"))
        a.set_timer(0.1, lambda: fired.append("early"))
        network.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_stops_at_deadline(self):
        network, a, b = make_network()
        fired = []
        a.set_timer(1.0, lambda: fired.append("x"))
        a.set_timer(10.0, lambda: fired.append("y"))
        network.run(until=5.0)
        assert fired == ["x"]
        assert network.pending_events() == 1

    def test_event_budget_guards_against_storms(self):
        network = Network(conditions=NetworkConditions(base_latency=0.0, seed=1))

        class Storm(SimNode):
            def on_message(self, message):
                self.send(self.node_id, "again")

        storm = Storm("s")
        network.register(storm)
        storm.send("s", "go")
        with pytest.raises(RuntimeError):
            network.run(max_events=100)

    def test_budget_hit_on_exactly_the_last_event_is_not_a_storm(self):
        network, a, b = make_network()
        fired = []
        for index in range(5):
            a.set_timer(0.1 * (index + 1), lambda i=index: fired.append(i))
        # The queue drains on exactly the last budgeted event: no error.
        assert network.run(max_events=5) == 5
        assert fired == [0, 1, 2, 3, 4]
        assert network.pending_events() == 0

    def test_budget_hit_with_only_post_deadline_events_is_not_a_storm(self):
        network, a, b = make_network()
        a.set_timer(1.0, lambda: None)
        a.set_timer(2.0, lambda: None)
        a.set_timer(10.0, lambda: None)
        # Two events fit the budget; the only remaining one is past the
        # deadline, which is a normal deadline stop, not a message storm.
        assert network.run(max_events=2, until=5.0) == 2
        assert network.pending_events() == 1

    def test_node_clock_accessible(self):
        network, a, b = make_network()
        assert a.now == network.now


class TestAdversarialConditions:
    def test_drop_rate_one_drops_everything(self):
        network = Network(conditions=NetworkConditions(base_latency=0.001, drop_rate=1.0, seed=1))
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "hello")
        network.run_until_idle()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_dropped_messages_have_no_delivery_time(self):
        network = Network(conditions=NetworkConditions(base_latency=0.001, drop_rate=1.0, seed=1))
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "hello")
        network.run_until_idle()
        (record,) = network.delivery_log
        assert record.dropped
        assert record.delivered_at is None

    def test_drop_log_exposes_only_dropped_records(self):
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1))
        adversary = network.adversary
        adversary.block_link("a", "b")
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "lost")
        b.send("a", "arrives")
        network.run_until_idle()
        assert [r.message.payload for r in network.drop_log] == ["lost"]
        assert len(network.delivery_log) == 2
        delivered = [r for r in network.delivery_log if not r.dropped]
        assert all(r.delivered_at is not None for r in delivered)

    def test_duplicate_rate_one_duplicates_everything(self):
        network = Network(
            conditions=NetworkConditions(base_latency=0.001, duplicate_rate=1.0, seed=1)
        )
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "hello")
        network.run_until_idle()
        assert len(b.received) == 2

    def test_blocked_link_drops_messages(self):
        adversary = Adversary()
        adversary.block_link("a", "b")
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1),
                          adversary=adversary)
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "hello")
        b.send("a", "hi")
        network.run_until_idle()
        assert b.received == []
        assert len(a.received) == 1

    def test_delay_rule_postpones_delivery(self):
        adversary = Adversary()
        adversary.add_delay_rule(lambda m: m.receiver == "b", 5.0)
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1),
                          adversary=adversary)
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "hello")
        network.run_until_idle()
        assert len(b.received) == 1
        assert network.now >= 5.0

    def test_partition_and_heal(self):
        adversary = Adversary()
        adversary.partition(["a"], ["b"])
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1),
                          adversary=adversary)
        a, b = EchoNode("a"), EchoNode("b")
        network.register(a)
        network.register(b)
        a.send("b", "during-partition")
        network.run_until_idle()
        assert b.received == []
        adversary.heal_partition()
        a.send("b", "after-heal")
        network.run_until_idle()
        assert [m.payload for m in b.received] == ["after-heal"]

    def test_lan_and_wan_profiles(self):
        assert NetworkConditions.wan().base_latency > NetworkConditions.lan().base_latency


class TestAdversaryThresholds:
    def test_vc_threshold(self):
        assert Adversary.vc_threshold_ok(4, 1)
        assert not Adversary.vc_threshold_ok(4, 2)

    def test_bb_threshold(self):
        assert Adversary.bb_threshold_ok(3, 1)
        assert not Adversary.bb_threshold_ok(3, 2)

    def test_trustee_threshold(self):
        assert Adversary.trustee_threshold_ok(5, 3, 2)
        assert not Adversary.trustee_threshold_ok(5, 3, 3)

    def test_corruption_bookkeeping(self):
        adversary = Adversary()
        adversary.corrupt_vc(["VC-0"])
        adversary.corrupt_bb(["BB-1"])
        adversary.corrupt_trustees(["T-2"])
        adversary.corrupt_voters(["voter-3"])
        for node in ("VC-0", "BB-1", "T-2", "voter-3"):
            assert adversary.is_corrupted(node)
        assert not adversary.is_corrupted("VC-1")
