"""Tests for the transport backends and byte-level bandwidth accounting."""

import pytest

from repro.api import (
    AuditConfig,
    ConsensusConfig,
    ElectionEngine,
    ScenarioSpec,
    TransportProfile,
)
from repro.core.messages import Announce, VscBatch, VscEnvelope
from repro.net.adversary import NetworkConditions
from repro.net.channels import ChannelKind
from repro.net.codec import FRAME_OVERHEAD, MessageCodec
from repro.net.simulator import Network, SimNode
from repro.net.transport import InProcessTransport, TcpLoopbackTransport


class Sink(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def wire_network(**kwargs):
    network = Network(
        conditions=NetworkConditions(base_latency=0.001, seed=1),
        transport=InProcessTransport(codec=MessageCodec()),
        **kwargs,
    )
    a, b = Sink("a"), Sink("b")
    network.register(a)
    network.register(b)
    return network, a, b


PAYLOAD = Announce(7, None, None, "a")


class TestByteAccounting:
    def test_default_transport_counts_no_bytes(self):
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=1))
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        a.send("b", PAYLOAD)
        network.run_until_idle()
        assert network.bytes_sent == 0
        assert network.bytes_delivered == 0
        assert b.received[0].payload is PAYLOAD  # passed by reference

    def test_wire_transport_counts_frame_bytes(self):
        network, a, b = wire_network()
        frame_len = len(MessageCodec().encode(PAYLOAD))
        a.send("b", PAYLOAD)
        network.run_until_idle()
        assert network.bytes_sent == frame_len
        assert network.bytes_delivered == frame_len
        assert frame_len > FRAME_OVERHEAD

    def test_wire_transport_round_trips_payloads_by_value(self):
        network, a, b = wire_network()
        a.send("b", PAYLOAD)
        network.run_until_idle()
        delivered = b.received[0].payload
        assert delivered == PAYLOAD
        assert delivered is not PAYLOAD  # decoded from bytes, not a reference

    def test_per_channel_byte_split(self):
        network, a, b = wire_network()
        a.send("b", PAYLOAD, channel=ChannelKind.PUBLIC)
        a.send("b", PAYLOAD)
        network.run_until_idle()
        assert network.channel_bytes_sent[ChannelKind.PUBLIC] > 0
        assert network.channel_bytes_sent[ChannelKind.AUTHENTICATED] > 0
        assert (
            network.channel_bytes_sent[ChannelKind.PUBLIC]
            + network.channel_bytes_sent[ChannelKind.AUTHENTICATED]
            == network.bytes_sent
        )
        assert network.channel_bytes_delivered == network.channel_bytes_sent

    def test_dropped_messages_cost_sent_bytes_but_not_delivered(self):
        network = Network(
            conditions=NetworkConditions(base_latency=0.001, drop_rate=1.0, seed=1),
            transport=InProcessTransport(codec=MessageCodec()),
        )
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        a.send("b", PAYLOAD)
        network.run_until_idle()
        assert network.bytes_sent > 0
        assert network.bytes_delivered == 0
        (record,) = network.drop_log
        assert record.wire_bytes == network.bytes_sent
        assert record.message.wire_frame is None  # frame released on drop too

    def test_delivery_log_records_wire_bytes(self):
        network, a, b = wire_network()
        a.send("b", PAYLOAD)
        network.run_until_idle()
        (record,) = network.delivery_log
        assert record.wire_bytes == network.bytes_sent
        assert record.message.wire_frame is None  # frame released after delivery

    def test_bandwidth_summary(self):
        network, a, b = wire_network()
        a.send("b", PAYLOAD)
        network.run_until_idle()
        summary = network.bandwidth_summary()
        assert summary["transport"] == "memory+wire"
        assert summary["bytes_sent"] == network.bytes_sent
        assert summary["channel_bytes_sent"]["authenticated"] == network.bytes_sent


@pytest.fixture(scope="module")
def small_wire_spec():
    return ScenarioSpec(
        options=("option-1", "option-2"),
        num_voters=3,
        election_end=400.0,
        audit=AuditConfig(batch=True, workers=1),
        transport=TransportProfile.wire(),
    )


CHOICES = ["option-1", "option-2", "option-1"]


def outcome_fingerprint(outcome):
    """Everything the acceptance criterion compares between transports."""
    return (
        outcome.tally.as_dict() if outcome.tally else None,
        outcome.audit_report.passed if outcome.audit_report else None,
        outcome.receipts_obtained,
        outcome.all_receipts_valid,
        tuple(node.final_vote_set for node in outcome.vote_collectors),
        tuple(sorted(outcome.phase_timings)),
    )


class TestTransportEquivalence:
    def test_wire_format_does_not_change_the_outcome(self, small_wire_spec):
        reference = ElectionEngine(
            small_wire_spec.derive(transport=TransportProfile.memory())
        ).run(CHOICES)
        wired = ElectionEngine(small_wire_spec).run(CHOICES)
        assert outcome_fingerprint(reference) == outcome_fingerprint(wired)
        assert reference.network.bytes_sent == 0
        assert wired.network.bytes_sent > 0

    def test_tcp_loopback_election_matches_simulated_outcome(self, small_wire_spec):
        """Acceptance: a real-socket election equals the simulated one."""
        simulated = ElectionEngine(small_wire_spec).run(CHOICES)
        over_tcp = ElectionEngine(
            small_wire_spec.derive(transport=TransportProfile.tcp())
        ).run(CHOICES)
        assert outcome_fingerprint(simulated) == outcome_fingerprint(over_tcp)
        assert over_tcp.tally is not None and over_tcp.audit_report.passed
        assert over_tcp.network.transport.name == "tcp"
        assert over_tcp.network.transport.frames_sent > 0
        assert over_tcp.network.bytes_sent > 0

    def test_superblock_batching_shrinks_consensus_bytes(self):
        """Acceptance: batching reduces measured consensus *bytes*."""

        def consensus_bytes(batch_size):
            spec = ScenarioSpec(
                options=("option-1", "option-2"),
                num_voters=8,
                election_end=400.0,
                audit=AuditConfig(enabled=False),
                consensus=ConsensusConfig(batch_size=batch_size),
                transport=TransportProfile.wire(),
            )
            choices = ["option-1", "option-2"] * 4
            outcome = ElectionEngine(spec).run(choices)
            total = 0
            for record in outcome.network.delivery_log:
                if isinstance(record.message.payload, (Announce, VscEnvelope, VscBatch)):
                    total += record.wire_bytes
            return outcome.tally.as_dict(), total

        per_ballot_tally, per_ballot_bytes = consensus_bytes(1)
        batched_tally, batched_bytes = consensus_bytes(8)
        assert per_ballot_tally == batched_tally
        assert 0 < batched_bytes < per_ballot_bytes


class TestTcpTransportLifecycle:
    def test_close_is_idempotent(self):
        transport = TcpLoopbackTransport()
        network = Network(
            conditions=NetworkConditions(base_latency=0.001, seed=1), transport=transport
        )
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        a.send("b", PAYLOAD)
        network.run_until_idle()
        assert b.received[0].payload == PAYLOAD
        network.close()
        network.close()

    def test_register_after_close_rejected(self):
        transport = TcpLoopbackTransport()
        transport.close()
        with pytest.raises(RuntimeError):
            transport.register("a")

    def test_send_to_unregistered_node_is_silently_dropped(self):
        transport = TcpLoopbackTransport()
        network = Network(
            conditions=NetworkConditions(base_latency=0.001, seed=1), transport=transport
        )
        a = Sink("a")
        network.register(a)
        a.send("ghost", PAYLOAD)
        network.run_until_idle()
        network.close()
