"""Tests for message/channel data structures."""

from repro.net.channels import Channel, ChannelKind, Message


class TestChannel:
    def test_authenticated_by_default(self):
        channel = Channel("a", "b")
        assert channel.is_authenticated

    def test_public_channel(self):
        channel = Channel("voter", "VC-0", ChannelKind.PUBLIC)
        assert not channel.is_authenticated


class TestMessage:
    def test_message_ids_are_unique(self):
        first = Message("a", "b", "x")
        second = Message("a", "b", "x")
        assert first.message_id != second.message_id

    def test_duplicate_preserves_payload_but_changes_id(self):
        original = Message("a", "b", {"k": 1}, send_time=3.0)
        copy = original.duplicate()
        assert copy.payload == original.payload
        assert copy.sender == original.sender
        assert copy.send_time == original.send_time
        assert copy.message_id != original.message_id

    def test_default_channel_is_authenticated(self):
        assert Message("a", "b", "x").channel is ChannelKind.AUTHENTICATED
