"""Tests for global/node clocks with bounded drift."""

import pytest

from repro.net.clock import ClockRegistry, GlobalClock, NodeClock


class TestGlobalClock:
    def test_starts_at_zero_by_default(self):
        assert GlobalClock().now == 0.0

    def test_advance(self):
        clock = GlobalClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            GlobalClock().advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = GlobalClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0


class TestNodeClock:
    def test_drift_offsets_global_time(self):
        global_clock = GlobalClock(100.0)
        node = NodeClock(global_clock, drift=3.0)
        assert node.now == 103.0

    def test_init_resets_drift(self):
        node = NodeClock(GlobalClock(50.0), drift=7.0)
        node.init()
        assert node.drift == 0.0
        assert node.now == 50.0

    def test_advance_increases_drift(self):
        node = NodeClock(GlobalClock(0.0), drift=0.0)
        node.advance(2.0)
        assert node.drift == 2.0

    def test_drift_bound_enforced_on_construction(self):
        with pytest.raises(ValueError):
            NodeClock(GlobalClock(), drift=5.0, max_drift=1.0)

    def test_drift_bound_enforced_on_advance(self):
        node = NodeClock(GlobalClock(), drift=0.5, max_drift=1.0)
        with pytest.raises(ValueError):
            node.advance(2.0)

    def test_drift_bound_enforced_on_set(self):
        node = NodeClock(GlobalClock(), max_drift=1.0)
        with pytest.raises(ValueError):
            node.set_drift(2.0)
        node.set_drift(0.5)
        assert node.drift == 0.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            NodeClock(GlobalClock()).advance(-1.0)


class TestClockRegistry:
    def test_register_and_lookup(self):
        registry = ClockRegistry()
        clock = registry.register("VC-0", drift=1.0)
        assert registry.clock_of("VC-0") is clock

    def test_register_is_idempotent(self):
        registry = ClockRegistry()
        first = registry.register("VC-0")
        second = registry.register("VC-0")
        assert first is second

    def test_init_all_resets_every_drift(self):
        registry = ClockRegistry()
        registry.register("a", drift=2.0)
        registry.register("b", drift=-1.0)
        registry.init_all()
        assert registry.max_abs_drift() == 0.0

    def test_max_abs_drift(self):
        registry = ClockRegistry()
        registry.register("a", drift=2.0)
        registry.register("b", drift=-3.0)
        assert registry.max_abs_drift() == 3.0

    def test_max_abs_drift_empty(self):
        assert ClockRegistry().max_abs_drift() == 0.0

    def test_registry_enforces_global_bound(self):
        registry = ClockRegistry(max_drift=1.0)
        with pytest.raises(ValueError):
            registry.register("a", drift=2.0)
