"""Shared fixtures.

Expensive artifacts (the group, a full EA setup, a complete election run) are
session-scoped so the many tests that only *read* them do not pay the setup
cost repeatedly.  Tests that mutate state build their own instances.
"""

from __future__ import annotations

import pytest

from repro.api import ElectionEngine, ScenarioSpec
from repro.crypto.elgamal import LiftedElGamal
from repro.crypto.registry import get_group
from repro.crypto.utils import RandomSource


@pytest.fixture(scope="session")
def group():
    """The default (fast) Schnorr group backend."""
    return get_group("schnorr")


@pytest.fixture(scope="session")
def elgamal_keys(group):
    """A commitment key pair shared by crypto tests."""
    return LiftedElGamal(group).keygen(RandomSource(1))


@pytest.fixture()
def rng():
    """A fresh deterministic randomness source per test."""
    return RandomSource(42)


@pytest.fixture(scope="session")
def small_spec():
    """A small but fully fault-tolerant scenario: 4 VC, 3 BB, 3 trustees."""
    return ScenarioSpec(
        options=("option-1", "option-2"),
        num_voters=4,
        num_vc=4,
        num_bb=3,
        num_trustees=3,
        trustee_threshold=2,
        election_end=200.0,
        seed=5,
    )


@pytest.fixture(scope="session")
def small_params(small_spec):
    """The core-layer parameters of the shared scenario."""
    return small_spec.to_election_parameters()


@pytest.fixture(scope="session")
def small_outcome(small_spec):
    """One complete, honest election run shared by read-only integration tests."""
    engine = ElectionEngine(small_spec)
    choices = ["option-1", "option-2", "option-1", "option-1"]
    return engine.run(choices)


@pytest.fixture(scope="session")
def small_setup(small_outcome):
    """The EA setup of the shared election run."""
    return small_outcome.setup
