"""Property tests for cross-backend agreement and the group-law axioms.

Two families:

* **Cross-backend agreement.**  The gmpy2-accelerated Schnorr backend must be
  observationally identical to the pure-python reference: same element values,
  same serializations, and -- given the same RandomSource seed -- the same
  signatures, ciphertexts and commitments.  When gmpy2 is absent the
  ``schnorr-gmpy2`` factory returns the pure backend, so these tests pass
  trivially; the gmpy2 CI leg (``pip install -e .[fast]``) is where they bite.

* **Group-law axioms.**  Every registered backend is a prime-order group:
  associativity, commutativity, identity, inverses, exponent arithmetic,
  serialize/deserialize round-trip, and agreement between the accelerated
  exponentiation paths (fixed-base tables, ``multi_power``, ``cached_power``)
  and plain ``**``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.elgamal import LiftedElGamal
from repro.crypto.gmpy2_backend import make_gmpy2_group
from repro.crypto.registry import get_group
from repro.crypto.signatures import SignatureScheme
from repro.crypto.utils import RandomSource

PURE = get_group("schnorr")
FAST = get_group("schnorr-gmpy2")

BACKENDS = {
    "schnorr": PURE,
    "schnorr-gmpy2": FAST,
    "ed25519": get_group("ed25519"),
    "secp256k1": get_group("secp256k1"),
}

relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
# The pure-python curve backends cost milliseconds per exponentiation, so the
# axiom sweep uses fewer examples than the integer-only agreement tests.
brief = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

exponents = st.integers(min_value=1, max_value=PURE.order - 1)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
backend_names = st.sampled_from(sorted(BACKENDS))


class TestCrossBackendAgreement:
    @relaxed
    @given(exponents)
    def test_same_elements_and_serializations(self, exponent):
        pure = PURE.power_g(exponent)
        fast = FAST.power_g(exponent)
        assert pure == fast
        assert pure.serialize() == fast.serialize()
        assert FAST.plain_power(FAST.generator(), exponent) == pure
        assert PURE.deserialize(fast.serialize()) == pure
        assert FAST.deserialize(pure.serialize()) == fast

    @relaxed
    @given(exponents, exponents)
    def test_multi_power_agrees(self, e1, e2):
        pure_pairs = [(PURE.power_g(e1), e2), (PURE.power_h(e2), e1)]
        fast_pairs = [(FAST.power_g(e1), e2), (FAST.power_h(e2), e1)]
        assert PURE.multi_power(pure_pairs) == FAST.multi_power(fast_pairs)

    @relaxed
    @given(seeds)
    def test_same_seed_same_signature(self, seed):
        pure_signer = SignatureScheme(PURE)
        fast_signer = SignatureScheme(FAST)
        pure_keys = pure_signer.keygen(RandomSource(seed))
        fast_keys = fast_signer.keygen(RandomSource(seed))
        assert pure_keys.secret == fast_keys.secret
        assert pure_keys.public.serialize() == fast_keys.public.serialize()
        message = b"cross-backend"
        pure_sig = pure_signer.sign(pure_keys, message, RandomSource(seed + 1))
        fast_sig = fast_signer.sign(fast_keys, message, RandomSource(seed + 1))
        assert (pure_sig.challenge, pure_sig.response) == (
            fast_sig.challenge,
            fast_sig.response,
        )
        # Signatures verify across backends in both directions.
        assert pure_signer.verify(fast_keys.public, message, pure_sig)
        assert fast_signer.verify(pure_keys.public, message, fast_sig)

    @relaxed
    @given(seeds)
    def test_same_seed_same_ciphertext_and_commitment(self, seed):
        pure_scheme = LiftedElGamal(PURE)
        fast_scheme = LiftedElGamal(FAST)
        pure_keys = pure_scheme.keygen(RandomSource(seed))
        fast_keys = fast_scheme.keygen(RandomSource(seed))
        pure_ct = pure_scheme.encrypt(pure_keys.public, 1, rng=RandomSource(seed + 1))
        fast_ct = fast_scheme.encrypt(fast_keys.public, 1, rng=RandomSource(seed + 1))
        assert pure_ct.serialize() == fast_ct.serialize()
        pure_commit, _ = OptionEncodingScheme(3, pure_keys.public, PURE).commit_option(
            1, rng=RandomSource(seed + 2)
        )
        fast_commit, _ = OptionEncodingScheme(3, fast_keys.public, FAST).commit_option(
            1, rng=RandomSource(seed + 2)
        )
        assert pure_commit.serialize() == fast_commit.serialize()

    def test_parameterized_construction_agrees(self):
        pure = get_group("schnorr", g=16)
        fast = make_gmpy2_group(g=16)
        assert pure.generator() == fast.generator()
        assert pure.second_generator() == fast.second_generator()
        assert pure.power_g(987654321) == fast.power_g(987654321)


class TestGroupAxioms:
    @brief
    @given(backend_names, exponents, exponents, exponents)
    def test_group_laws(self, name, e1, e2, e3):
        group = BACKENDS[name]
        a = group.power_g(e1 % group.order or 1)
        b = group.power_h(e2 % group.order or 1)
        c = group.power_g(e3 % group.order or 1)
        assert (a * b) * c == a * (b * c)
        assert a * b == b * a
        assert a * group.identity() == a
        assert a * a.inverse() == group.identity()
        assert a / b == a * b.inverse()

    @brief
    @given(backend_names, exponents)
    def test_serialize_round_trip(self, name, exponent):
        group = BACKENDS[name]
        element = group.power_g(exponent % group.order or 1)
        assert group.deserialize(element.serialize()) == element
        if group.element_bytes is not None:
            assert len(element.serialize()) == group.element_bytes

    @brief
    @given(backend_names, exponents, exponents)
    def test_accelerated_paths_agree_with_plain(self, name, e1, e2):
        group = BACKENDS[name]
        e1 = e1 % group.order or 1
        e2 = e2 % group.order or 1
        g = group.generator()
        expected = g**e1
        assert group.power_g(e1) == expected
        assert group.plain_power(g, e1) == expected
        assert group.cached_power(g, e1) == expected
        base = group.power_h(e2)
        assert group.multi_power([(g, e1), (base, e2)]) == expected * base**e2

    @brief
    @given(backend_names, exponents)
    def test_exponent_arithmetic(self, name, exponent):
        group = BACKENDS[name]
        e = exponent % group.order or 1
        g = group.generator()
        assert g**e * g == g ** (e + 1)
        assert g ** (group.order) == group.identity()
        assert (g**e).inverse() == g ** (group.order - e)
