"""Property-based tests for binary consensus: agreement, validity and
termination hold for randomly chosen inputs, network schedules and faulty-node
placements (within the n >= 3f + 1 threshold).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.bracha import BinaryConsensusInstance
from repro.net.adversary import NetworkConditions
from repro.net.channels import Message
from repro.net.simulator import Network, SimNode


class Host(SimNode):
    def __init__(self, node_id, peers, num_faulty, silent=False):
        super().__init__(node_id)
        self.peers = peers
        self.silent = silent
        self.instance = BinaryConsensusInstance(
            instance_id="prop",
            node_id=node_id,
            num_nodes=len(peers),
            num_faulty=num_faulty,
            broadcast=lambda msg: self.broadcast(self.peers, msg),
        )

    def on_message(self, message: Message) -> None:
        if self.silent:
            return
        self.instance.handle(message.sender, message.payload)


def run_instance(proposals, silent_index, seed, jitter):
    num_nodes = len(proposals)
    num_faulty = (num_nodes - 1) // 3
    peers = [f"N{i}" for i in range(num_nodes)]
    network = Network(
        conditions=NetworkConditions(base_latency=0.001, jitter=jitter, seed=seed)
    )
    hosts = []
    for i, node_id in enumerate(peers):
        host = Host(node_id, peers, num_faulty, silent=(i == silent_index))
        hosts.append(host)
        network.register(host)
    for i, host in enumerate(hosts):
        if i == silent_index:
            continue
        network.schedule(0.0, lambda h=host, v=proposals[i]: h.instance.propose(v))
    network.run_until_idle(max_events=500_000)
    return [host for i, host in enumerate(hosts) if i != silent_index]


consensus_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestConsensusProperties:
    @consensus_settings
    @given(
        proposals=st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=7),
        seed=st.integers(min_value=0, max_value=1000),
        jitter=st.floats(min_value=0.0, max_value=0.05),
    )
    def test_agreement_and_termination(self, proposals, seed, jitter):
        honest = run_instance(proposals, silent_index=None, seed=seed, jitter=jitter)
        decisions = {host.instance.decided for host in honest}
        assert None not in decisions
        assert len(decisions) == 1

    @consensus_settings
    @given(
        value=st.integers(min_value=0, max_value=1),
        size=st.integers(min_value=4, max_value=7),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_validity_with_unanimous_input(self, value, size, seed):
        honest = run_instance([value] * size, silent_index=None, seed=seed, jitter=0.01)
        assert all(host.instance.decided == value for host in honest)

    @consensus_settings
    @given(
        proposals=st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
        silent=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_agreement_with_one_crashed_node(self, proposals, silent, seed):
        honest = run_instance(proposals, silent_index=silent, seed=seed, jitter=0.02)
        decisions = {host.instance.decided for host in honest}
        assert None not in decisions
        assert len(decisions) == 1

    @consensus_settings
    @given(
        value=st.integers(min_value=0, max_value=1),
        silent=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_validity_with_one_crashed_node(self, value, silent, seed):
        honest = run_instance([value] * 4, silent_index=silent, seed=seed, jitter=0.02)
        assert all(host.instance.decided == value for host in honest)
