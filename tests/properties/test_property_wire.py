"""Property-based tests (hypothesis) for the canonical wire format.

Two defining properties of the codec:

* **round trip** -- ``decode(encode(m)) == m`` for every registered message
  type, over adversarially weird field values (huge serials, empty and long
  byte strings, unicode node ids, deep nesting);
* **strict rejection** -- truncated, bit-flipped and unknown-tag frames never
  decode to anything; they raise :class:`WireFormatError`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.batching import (
    BatchEnvelope,
    SuperblockEcho,
    SuperblockReady,
    SuperblockSend,
)
from repro.consensus.interfaces import Aux, BVal, Finish
from repro.core.messages import (
    Announce,
    Endorse,
    Endorsement,
    MskShareUpload,
    RecoverRequest,
    RecoverResponse,
    UniquenessCertificate,
    VotePending,
    VoteReceipt,
    VoteRejected,
    VoteRequest,
    VoteSetUpload,
    VscBatch,
    VscEnvelope,
)
from repro.crypto.shamir import Share, SignedShare
from repro.crypto.signatures import SchnorrSignature
from repro.net.codec import MessageCodec, WireFormatError

CODEC = MessageCodec()

serials = st.integers(min_value=0, max_value=2**64 - 1)
vote_codes = st.binary(min_size=0, max_size=40)
node_ids = st.text(min_size=1, max_size=12)
scalars = st.integers(min_value=0, max_value=2**256 - 1)
rounds = st.integers(min_value=0, max_value=2**16)
bits = st.integers(min_value=0, max_value=1)
instances = st.text(min_size=1, max_size=16)

signatures = st.builds(
    SchnorrSignature, challenge=scalars, response=scalars, commitment=st.none()
)
shares = st.builds(Share, index=st.integers(1, 1000), value=scalars)
signed_shares = st.builds(
    SignedShare, share=shares, context=st.binary(max_size=64), signature=signatures
)
endorsements = st.builds(
    Endorsement,
    serial=serials,
    vote_code=vote_codes,
    signer=node_ids,
    signature=signatures,
)
ucerts = st.builds(
    UniquenessCertificate,
    serial=serials,
    vote_code=vote_codes,
    endorsements=st.tuples(endorsements, endorsements, endorsements),
)
consensus_messages = st.one_of(
    st.builds(BVal, instance=instances, round=rounds, value=bits),
    st.builds(Aux, instance=instances, round=rounds, value=bits),
    st.builds(Finish, instance=instances, value=bits),
    st.builds(
        SuperblockSend,
        instance=instances,
        origin=node_ids,
        bits=st.lists(bits, max_size=64).map(tuple),
    ),
    st.builds(
        SuperblockEcho,
        instance=instances,
        origin=node_ids,
        bits=st.lists(bits, max_size=64).map(tuple),
    ),
    st.builds(
        SuperblockReady,
        instance=instances,
        origin=node_ids,
        bits=st.lists(bits, max_size=64).map(tuple),
    ),
)

messages = st.one_of(
    st.builds(VoteRequest, serial=serials, vote_code=vote_codes, voter_id=node_ids),
    st.builds(VoteReceipt, serial=serials, vote_code=vote_codes, receipt=st.binary(max_size=16)),
    st.builds(VoteRejected, serial=serials, vote_code=vote_codes, reason=st.text(max_size=40)),
    st.builds(Endorse, serial=serials, vote_code=vote_codes),
    endorsements,
    ucerts,
    st.builds(
        VotePending,
        serial=serials,
        vote_code=vote_codes,
        receipt_share=signed_shares,
        ucert=ucerts,
        sender=node_ids,
    ),
    st.builds(
        Announce,
        serial=serials,
        vote_code=st.one_of(st.none(), vote_codes),
        ucert=st.none(),
        sender=node_ids,
    ),
    st.builds(Announce, serial=serials, vote_code=vote_codes, ucert=ucerts, sender=node_ids),
    st.builds(RecoverRequest, serial=serials, sender=node_ids),
    st.builds(
        RecoverResponse, serial=serials, vote_code=vote_codes, ucert=ucerts, sender=node_ids
    ),
    st.builds(VscEnvelope, consensus_message=consensus_messages, sender=node_ids),
    st.builds(
        VscBatch,
        envelope=st.builds(
            BatchEnvelope, messages=st.lists(consensus_messages, max_size=8).map(tuple)
        ),
        sender=node_ids,
    ),
    st.builds(
        VoteSetUpload,
        vote_set=st.lists(st.tuples(serials, vote_codes), max_size=16).map(tuple),
        sender=node_ids,
    ),
    st.builds(MskShareUpload, share=signed_shares, sender=node_ids),
    consensus_messages,
    signatures,
    shares,
    signed_shares,
)


@given(message=messages)
@settings(max_examples=300)
def test_decode_encode_round_trip(message):
    assert CODEC.decode(CODEC.encode(message)) == message


@given(message=messages, data=st.data())
@settings(max_examples=200)
def test_truncated_frames_rejected(message, data):
    frame = CODEC.encode(message)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    try:
        CODEC.decode(frame[:cut])
    except WireFormatError:
        pass
    else:
        raise AssertionError("truncated frame decoded")


@given(message=messages, data=st.data())
@settings(max_examples=200)
def test_bit_flips_rejected(message, data):
    frame = bytearray(CODEC.encode(message))
    index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    frame[index] ^= 1 << bit
    try:
        CODEC.decode(bytes(frame))
    except WireFormatError:
        pass
    else:
        raise AssertionError("corrupted frame decoded")


@given(message=messages, tag=st.integers(min_value=0x1000, max_value=0xFFFF))
@settings(max_examples=100)
def test_unknown_tags_rejected(message, tag):
    import zlib

    frame = bytearray(CODEC.encode(message))
    frame[3:5] = tag.to_bytes(2, "big")
    # Fix the checksum so only the unknown tag can be the rejection reason.
    frame[-4:] = zlib.crc32(bytes(frame[:-4])).to_bytes(4, "big")
    try:
        CODEC.decode(bytes(frame))
    except WireFormatError:
        pass
    else:
        raise AssertionError("unknown-tag frame decoded")


@given(message=messages)
@settings(max_examples=100)
def test_encoding_is_deterministic(message):
    assert CODEC.encode(message) == CODEC.encode(message)
