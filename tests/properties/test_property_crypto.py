"""Property-based tests (hypothesis) for the cryptographic substrates."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.elgamal import LiftedElGamal
from repro.crypto.registry import get_group
from repro.crypto.shamir import ShamirSecretSharing
from repro.crypto.signatures import SignatureScheme
from repro.crypto.symmetric import VoteCodeCipher, commit_vote_code, verify_vote_code
from repro.crypto.utils import RandomSource, bytes_to_int, hash_to_scalar, int_to_bytes

GROUP = get_group("schnorr")
ELGAMAL = LiftedElGamal(GROUP)
KEYS = ELGAMAL.keygen(RandomSource(1))
SIGNER = SignatureScheme(GROUP)
SIGNING_KEYS = SIGNER.keygen(RandomSource(2))

relaxed = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestGroupProperties:
    @relaxed
    @given(a=st.integers(min_value=1, max_value=2 ** 64),
           b=st.integers(min_value=1, max_value=2 ** 64))
    def test_exponentiation_is_homomorphic(self, a, b):
        g = GROUP.generator()
        assert (g ** a) * (g ** b) == g ** (a + b)

    @relaxed
    @given(a=st.integers(min_value=1, max_value=2 ** 64))
    def test_inverse_cancels(self, a):
        element = GROUP.generator() ** a
        assert element * element.inverse() == GROUP.identity()

    @relaxed
    @given(data=st.binary(min_size=0, max_size=64))
    def test_hash_to_scalar_stays_in_range(self, data):
        scalar = hash_to_scalar(GROUP.order, data)
        assert 0 <= scalar < GROUP.order


class TestElGamalProperties:
    @relaxed
    @given(message=st.integers(min_value=0, max_value=200))
    def test_encrypt_decrypt_roundtrip(self, message):
        ciphertext = ELGAMAL.encrypt(KEYS.public, message)
        assert ELGAMAL.decrypt(KEYS, ciphertext, max_message=250) == message

    @relaxed
    @given(a=st.integers(min_value=0, max_value=100),
           b=st.integers(min_value=0, max_value=100))
    def test_homomorphic_addition(self, a, b):
        combined = ELGAMAL.encrypt(KEYS.public, a) * ELGAMAL.encrypt(KEYS.public, b)
        assert ELGAMAL.decrypt(KEYS, combined, max_message=250) == a + b


class TestCommitmentProperties:
    @relaxed
    @given(votes=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=8))
    def test_homomorphic_tally_counts_every_vote(self, votes):
        scheme = OptionEncodingScheme(3, KEYS.public, GROUP)
        commitments, openings = zip(*(scheme.commit_option(v) for v in votes), strict=True)
        combined = scheme.combine(list(commitments))
        opening = scheme.combine_openings(list(openings))
        assert scheme.verify_opening(combined, opening)
        tally = scheme.tally_from_opening(opening)
        assert sum(tally) == len(votes)
        for option in range(3):
            assert tally[option] == votes.count(option)


class TestShamirProperties:
    @relaxed
    @given(
        secret=st.integers(min_value=0, max_value=2 ** 128),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    def test_any_threshold_subset_reconstructs(self, secret, threshold, extra, seed):
        num_shares = threshold + extra
        sss = ShamirSecretSharing(threshold, num_shares)
        shares = sss.share(secret, rng=RandomSource(seed))
        # Pick a "random" but deterministic subset of exactly threshold shares.
        subset = sorted(shares, key=lambda s: (s.value + seed) % 7)[:threshold]
        assert sss.reconstruct(subset) == secret

    @relaxed
    @given(secret=st.integers(min_value=0, max_value=2 ** 64),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_share_values_differ_from_secret_with_high_probability(self, secret, seed):
        sss = ShamirSecretSharing(3, 5)
        shares = sss.share(secret, rng=RandomSource(seed))
        # The polynomial is random; shares leaking the secret verbatim for
        # every share would indicate a broken implementation.
        assert any(share.value != secret for share in shares)


class TestSymmetricProperties:
    @relaxed
    @given(plaintext=st.binary(min_size=1, max_size=64),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_cipher_roundtrip(self, plaintext, seed):
        rng = RandomSource(seed)
        cipher = VoteCodeCipher(VoteCodeCipher.generate_key(rng))
        assert cipher.decrypt(cipher.encrypt(plaintext, rng=rng)) == plaintext

    @relaxed
    @given(code=st.binary(min_size=20, max_size=20),
           other=st.binary(min_size=20, max_size=20),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_hash_commitment_binds_to_code(self, code, other, seed):
        commitment = commit_vote_code(code, rng=RandomSource(seed))
        assert verify_vote_code(commitment, code)
        if other != code:
            assert not verify_vote_code(commitment, other)

    @relaxed
    @given(value=st.integers(min_value=0, max_value=2 ** 128 - 1))
    def test_int_bytes_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value, 16)) == value


class TestSignatureProperties:
    @relaxed
    @given(message=st.binary(min_size=0, max_size=128))
    def test_signatures_verify_for_any_message(self, message):
        signature = SIGNER.sign(SIGNING_KEYS, message)
        assert SIGNER.verify(SIGNING_KEYS.public, message, signature)

    @relaxed
    @given(message=st.binary(min_size=1, max_size=64),
           suffix=st.binary(min_size=1, max_size=16))
    def test_signature_does_not_transfer_to_extended_message(self, message, suffix):
        signature = SIGNER.sign(SIGNING_KEYS, message)
        assert not SIGNER.verify(SIGNING_KEYS.public, message + suffix, signature)
