"""Property: parallel shard execution is invisible in the outcome.

For any shard split, any worker count and every registered crypto backend,
the parallel driver's global commit record must be **bit-identical** (as a
canonical codec frame, which transitively covers the tally, the combined
commitment, every per-shard digest and the binding digest) to the sequential
driver's record for the same spec.  One warm pool per backend is shared by
all examples -- the driver guarantees correctness for arbitrary completion
orders, so reusing workers across examples only widens the schedules tested.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import CryptoProfile, ScenarioSpec, ShardingProfile
from repro.crypto.registry import available_backends
from repro.net.codec import MessageCodec
from repro.shard import ParallelShardedElectionDriver, ShardedElectionDriver
from repro.shard.parallel_driver import shard_worker_pool

SEED = 29
ELECTION_ID = "prop-parallel"
NUM_BALLOTS = 72

relaxed = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def spec_for(backend: str, num_shards: int, workers: int) -> ScenarioSpec:
    return ScenarioSpec(
        options=("yes", "no"),
        election_id=ELECTION_ID,
        seed=SEED,
        crypto=CryptoProfile(backend=backend),
        sharding=ShardingProfile(
            num_shards=num_shards, workers=workers, scale_batch_size=16
        ),
    )


@pytest.fixture(scope="module")
def pools():
    """One warm two-worker pool per backend, shared by every example."""
    created = {}

    def pool_for(backend: str):
        if backend not in created:
            created[backend] = shard_worker_pool(
                spec_for(backend, 1, 2), workers=2
            )
        return created[backend]

    yield pool_for
    for pool in created.values():
        pool.shutdown()


# The sequential reference for (backend, num_shards) is deterministic, so
# memoize it across examples instead of re-running the whole pipeline.
_SEQUENTIAL_FRAMES = {}


def sequential_frame(backend: str, num_shards: int) -> bytes:
    key = (backend, num_shards)
    if key not in _SEQUENTIAL_FRAMES:
        spec = spec_for(backend, num_shards, workers=1)
        outcome = ShardedElectionDriver(spec, num_ballots=NUM_BALLOTS).run()
        codec = MessageCodec(group=spec.crypto.build_group())
        _SEQUENTIAL_FRAMES[key] = (
            codec.encode(outcome.global_record),
            outcome.tally.as_dict(),
        )
    return _SEQUENTIAL_FRAMES[key]


@relaxed
@given(
    backend=st.sampled_from(available_backends()),
    num_shards=st.integers(min_value=1, max_value=6),
    workers=st.integers(min_value=1, max_value=3),
    max_inflight=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
)
def test_parallel_outcome_is_bit_identical_to_sequential(
    pools, backend, num_shards, workers, max_inflight
):
    spec = spec_for(backend, num_shards, workers)
    outcome = ParallelShardedElectionDriver(
        spec,
        num_ballots=NUM_BALLOTS,
        pool=pools(backend),
        workers=workers,
        max_inflight_shards=max_inflight,
    ).run()
    codec = MessageCodec(group=spec.crypto.build_group())
    frame, tally = sequential_frame(backend, num_shards)
    assert outcome.report.ok
    assert codec.encode(outcome.global_record) == frame
    assert outcome.tally.as_dict() == tally


@relaxed
@given(
    backend=st.sampled_from(available_backends()),
    num_shards=st.integers(min_value=2, max_value=6),
)
def test_wire_digest_binding_matches_sequential(pools, backend, num_shards):
    """The per-shard record digests bound into the global record -- the
    auditors' handle on the shards -- are also invariant."""
    spec = spec_for(backend, num_shards, workers=2)
    parallel = ParallelShardedElectionDriver(
        spec, num_ballots=NUM_BALLOTS, pool=pools(backend)
    ).run()
    sequential = ShardedElectionDriver(spec, num_ballots=NUM_BALLOTS).run()
    assert parallel.global_record.shard_digests == sequential.global_record.shard_digests
