"""Property tests for the sharded tally combination.

The sharded pipeline's correctness rests on one algebraic fact: because group
multiplication is exact, associative and commutative, folding ballot
commitments shard-by-shard (in any split, in any order) yields the
bit-identical element that ``combine_tally_commitments`` computes over the
flat list.  Hypothesis drives random vote patterns and random shard splits
against every registered crypto backend.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tally import combine_tally_commitments, open_tally
from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.registry import available_backends, get_group
from repro.crypto.utils import RandomSource
from repro.shard.merge import CrossShardCommit
from repro.shard.records import ShardCommitRecord
from repro.shard.streaming import (
    StreamingCommitmentCombiner,
    StreamingOpeningCombiner,
    StreamingTally,
)

NUM_OPTIONS = 2

SCHEMES = {
    name: OptionEncodingScheme(
        NUM_OPTIONS, get_group(name).power_g(23), get_group(name)
    )
    for name in available_backends()
}

# The pure-python curve backends cost milliseconds per exponentiation, so the
# sweep keeps electorates small and examples modest.
relaxed = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

backend_names = st.sampled_from(sorted(SCHEMES))
vote_patterns = st.lists(
    st.integers(min_value=0, max_value=NUM_OPTIONS - 1), min_size=1, max_size=12
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def split_points(pattern, splitter):
    """Deterministically derive shard boundaries from a hypothesis integer."""
    rng = RandomSource(splitter)
    points = sorted(
        {rng.randint_below(len(pattern)) for _ in range(rng.randint_below(4))} - {0}
    )
    return [0, *points, len(pattern)]


class TestStreamingEqualsFlat:
    @relaxed
    @given(backend_names, vote_patterns, seeds, seeds)
    def test_shard_split_preserves_the_combined_commitment(
        self, backend, pattern, seed, splitter
    ):
        scheme = SCHEMES[backend]
        rng = RandomSource(seed)
        ballots = [scheme.commit_option(option, rng) for option in pattern]
        flat = combine_tally_commitments(scheme, [c for c, _ in ballots])

        bounds = split_points(pattern, splitter)
        outer = StreamingCommitmentCombiner(scheme)
        opening = StreamingOpeningCombiner(scheme)
        for lo, hi in zip(bounds, bounds[1:], strict=False):
            inner = StreamingCommitmentCombiner(scheme)
            for commitment, _ in ballots[lo:hi]:
                inner.add(commitment)
            outer.add(inner.result())
            for _, o in ballots[lo:hi]:
                opening.add(o)
        assert outer.result() == flat

        tally = open_tally(scheme, outer.result(), opening.result(), ("a", "b"))
        assert tally.counts[0] == pattern.count(0)
        assert tally.counts[1] == pattern.count(1)

    @relaxed
    @given(backend_names, vote_patterns, seeds, seeds)
    def test_cross_shard_commit_equals_flat_combination(
        self, backend, pattern, seed, splitter
    ):
        """The full merge layer (records + two-phase commit) agrees too."""
        scheme = SCHEMES[backend]
        rng = RandomSource(seed)
        bounds = split_points(pattern, splitter)
        commit = CrossShardCommit(scheme)
        for shard_id, (lo, hi) in enumerate(zip(bounds, bounds[1:], strict=False)):
            tally = StreamingTally(scheme)
            for option in pattern[lo:hi]:
                randomness = tuple(
                    scheme.group.random_scalar(rng) for _ in range(NUM_OPTIONS)
                )
                tally.add_vote(option, randomness)
            commit.prepare(
                ShardCommitRecord(
                    shard_id=shard_id,
                    serial_lo=lo,
                    serial_hi=hi,
                    ballots_registered=hi - lo,
                    ballots_cast=hi - lo,
                    commitment=tally.commit(),
                    vote_set_digest=bytes([shard_id % 256]) * 32,
                    sender=f"shard-{shard_id}",
                ),
                tally.opening(),
            )
        global_record = commit.commit("property-test")
        tally = commit.open_merged_tally(("a", "b"))
        assert tally.counts == (pattern.count(0), pattern.count(1))
        assert global_record.total_cast == len(pattern)
