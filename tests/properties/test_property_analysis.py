"""Property-based tests for the analytical bounds and the cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import failed_attempt_probability, twait
from repro.analysis.verification import (
    e2e_verifiability_error,
    safety_failure_probability,
    safety_failure_probability_union,
)
from repro.perf.costmodel import CostModel, DatabaseCosts

quick = settings(max_examples=50, deadline=None)


class TestBoundProperties:
    @quick
    @given(
        num_vc=st.integers(min_value=4, max_value=100),
        tcomp=st.floats(min_value=0.0, max_value=10.0),
        drift=st.floats(min_value=0.0, max_value=10.0),
        delay=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_twait_is_nonnegative_and_monotone_in_nv(self, num_vc, tcomp, drift, delay):
        value = twait(num_vc, tcomp, drift, delay)
        assert value >= 0
        assert twait(num_vc + 1, tcomp, drift, delay) >= value

    @quick
    @given(
        fv=st.integers(min_value=1, max_value=30),
        attempts=st.integers(min_value=1, max_value=10),
    )
    def test_failed_attempts_never_exceed_proof_bound(self, fv, attempts):
        num_vc = 3 * fv + 1
        attempts = min(attempts, fv)
        assert failed_attempt_probability(num_vc, fv, attempts) < 3.0 ** (-attempts)

    @quick
    @given(num_faulty=st.integers(min_value=0, max_value=1000))
    def test_safety_probability_is_a_probability(self, num_faulty):
        value = safety_failure_probability(num_faulty)
        assert 0.0 <= value <= 1.0

    @quick
    @given(
        voters=st.integers(min_value=0, max_value=10 ** 9),
        num_faulty=st.integers(min_value=0, max_value=100),
    )
    def test_union_bound_dominates_individual_bound(self, voters, num_faulty):
        union = safety_failure_probability_union(voters, num_faulty)
        assert 0.0 <= union <= 1.0
        if voters >= 1:
            assert union >= safety_failure_probability(num_faulty) or union == 1.0

    @quick
    @given(theta=st.integers(min_value=0, max_value=64), d=st.integers(min_value=0, max_value=64))
    def test_e2e_error_monotone(self, theta, d):
        error = e2e_verifiability_error(theta, d)
        assert 0.0 <= error <= 1.0
        assert e2e_verifiability_error(theta + 1, d) <= error
        assert e2e_verifiability_error(theta, d + 1) <= error


class TestCostModelProperties:
    @quick
    @given(num_vc=st.integers(min_value=4, max_value=40))
    def test_per_vote_cpu_monotone_in_vc_count(self, num_vc):
        model = CostModel()
        assert model.per_vote_cpu_ms(num_vc + 1) > model.per_vote_cpu_ms(num_vc)

    @quick
    @given(
        small=st.integers(min_value=10 ** 4, max_value=10 ** 7),
        factor=st.integers(min_value=2, max_value=100),
    )
    def test_disk_throughput_monotone_in_electorate(self, small, factor):
        a = CostModel(database=DatabaseCosts(), num_ballots=small)
        b = CostModel(database=DatabaseCosts(), num_ballots=small * factor)
        assert a.saturated_throughput_estimate(4) > b.saturated_throughput_estimate(4)

    @quick
    @given(num_vc=st.integers(min_value=4, max_value=40))
    def test_throughput_estimate_positive(self, num_vc):
        assert CostModel().saturated_throughput_estimate(num_vc) > 0
