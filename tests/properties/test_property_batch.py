"""Property-based tests (hypothesis) for batch verification.

The defining property of a sound batch verifier: a batch is accepted if and
only if every item verifies individually -- and when it is rejected, the
bisection names exactly the items an individual verifier would reject.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.batch_verify import BatchVerifier, OpeningItem, SignatureItem
from repro.crypto.commitments import CommitmentOpening, OptionEncodingScheme
from repro.crypto.elgamal import LiftedElGamal
from repro.crypto.registry import get_group
from repro.crypto.signatures import SignatureScheme
from repro.crypto.utils import RandomSource
from repro.perf.parallel import chunk_seeds

GROUP = get_group("schnorr")
SIGNER = SignatureScheme(GROUP)
SIGNING_KEYS = SIGNER.keygen(RandomSource(31))
ELGAMAL = LiftedElGamal(GROUP)
COMMITMENT_KEYS = ELGAMAL.keygen(RandomSource(32))
SCHEME = OptionEncodingScheme(2, COMMITMENT_KEYS.public, GROUP)

BATCH_SIZE = 10

_RNG = RandomSource(33)
SIGNATURE_ITEMS = tuple(
    SignatureItem(
        SIGNING_KEYS.public, f"ballot-{i}".encode(), SIGNER.sign(SIGNING_KEYS, f"ballot-{i}".encode(), _RNG)
    )
    for i in range(BATCH_SIZE)
)
OPENING_ITEMS = tuple(
    OpeningItem(*SCHEME.commit_option(i % 2, _RNG)) for i in range(BATCH_SIZE)
)

relaxed = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def corrupt_signature(item: SignatureItem) -> SignatureItem:
    return SignatureItem(
        item.public, item.message, replace(item.signature, response=item.signature.response + 1)
    )


def corrupt_opening(item: OpeningItem) -> OpeningItem:
    bad = CommitmentOpening(item.opening.values, (item.opening.randomness[0] + 1,) + item.opening.randomness[1:])
    return OpeningItem(item.commitment, bad)


class TestBatchEquivalence:
    @relaxed
    @given(corrupted=st.sets(st.integers(min_value=0, max_value=BATCH_SIZE - 1), max_size=3),
           seed=st.integers(min_value=0, max_value=2 ** 32))
    def test_signature_batch_accepts_iff_all_individuals_accept(self, corrupted, seed):
        items = [
            corrupt_signature(item) if index in corrupted else item
            for index, item in enumerate(SIGNATURE_ITEMS)
        ]
        individually_ok = [
            SIGNER.verify(item.public, item.message, item.signature) for item in items
        ]
        verifier = BatchVerifier(GROUP, rng=RandomSource(seed))
        outcome = verifier.verify_signatures(items)
        assert outcome.ok == all(individually_ok)
        assert outcome.bad_indices == tuple(sorted(corrupted))

    @relaxed
    @given(corrupted=st.sets(st.integers(min_value=0, max_value=BATCH_SIZE - 1), max_size=3),
           seed=st.integers(min_value=0, max_value=2 ** 32))
    def test_opening_batch_accepts_iff_all_individuals_accept(self, corrupted, seed):
        items = [
            corrupt_opening(item) if index in corrupted else item
            for index, item in enumerate(OPENING_ITEMS)
        ]
        individually_ok = [
            SCHEME.verify_opening(item.commitment, item.opening) for item in items
        ]
        verifier = BatchVerifier(GROUP, rng=RandomSource(seed))
        outcome = verifier.verify_openings(COMMITMENT_KEYS.public, items)
        assert outcome.ok == all(individually_ok)
        assert outcome.bad_indices == tuple(sorted(corrupted))

    @relaxed
    @given(seed=st.integers(min_value=0, max_value=2 ** 32),
           bits=st.integers(min_value=8, max_value=128))
    def test_honest_batch_accepts_for_any_security_parameter(self, seed, bits):
        verifier = BatchVerifier(GROUP, security_bits=bits, rng=RandomSource(seed))
        assert verifier.verify_signatures(SIGNATURE_ITEMS).ok


class TestChunkSeedProperties:
    @relaxed
    @given(base=st.integers(min_value=0, max_value=2 ** 64), count=st.integers(min_value=0, max_value=64))
    def test_seeds_are_stable_and_64_bit(self, base, count):
        seeds = chunk_seeds(base, count)
        assert seeds == chunk_seeds(base, count)
        assert len(seeds) == count
        assert all(0 <= seed < 2 ** 64 for seed in seeds)
