"""Property-based tests (hypothesis) for the admission queue accounting.

The defining property of the admission pipeline: no request is ever lost or
double-counted.  Whatever interleaving of arrivals and drain-timer firings
occurs, ``requests == admitted + shed + backlog`` holds at every step, the
backlog never exceeds the depth bound under the shed policy, and once the
queue drains every offered request has been either admitted or shed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionQueue, AdmissionStats

relaxed = settings(max_examples=60, deadline=None)


class ScriptedNode:
    """Timer owner whose pending callbacks fire only when the test drains them."""

    def __init__(self):
        self.pending = []

    def set_timer(self, delay, callback, description=""):
        self.pending.append(callback)

    def fire_one(self) -> bool:
        if not self.pending:
            return False
        self.pending.pop(0)()
        return True

    def fire_all(self) -> None:
        while self.fire_one():
            pass


events = st.lists(st.sampled_from(["offer", "drain"]), min_size=1, max_size=60)


@relaxed
@given(
    events=events,
    depth=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    policy=st.sampled_from(["shed", "block"]),
    service_s=st.sampled_from([0.0, 0.05]),
)
def test_counters_reconcile_under_any_interleaving(events, depth, policy, service_s):
    node = ScriptedNode()
    stats = AdmissionStats()
    admitted, shed = [], []
    queue = AdmissionQueue(
        node=node,
        stats=stats,
        on_admit=lambda sender, request: admitted.append(request),
        on_shed=lambda sender, request, hint: shed.append(request),
        depth=depth,
        policy=policy,
        service_s=service_s,
    )

    offered = 0
    for event in events:
        if event == "offer":
            queue.offer(f"V-{offered}", offered)
            offered += 1
        else:
            node.fire_one()
        # Conservation: every offered request is exactly one of
        # admitted / shed / still queued.
        assert stats.requests == stats.admitted + stats.shed + len(queue)
        assert stats.admitted == len(admitted)
        assert stats.shed == len(shed)
        if depth is not None and policy == "shed":
            assert len(queue) <= depth

    node.fire_all()
    assert len(queue) == 0
    assert stats.requests == offered == stats.admitted + stats.shed
    # FIFO: requests are admitted in arrival order.
    assert admitted == sorted(admitted)
    # Only the shed policy sheds; only the block policy over-queues.
    if policy == "block":
        assert stats.shed == 0
    if policy == "shed":
        assert stats.blocked_over_depth == 0
    if service_s == 0.0:
        # Inline admission: nothing is ever queued or shed.
        assert stats.admitted == offered
        assert stats.peak_depth == 0


@relaxed
@given(
    num_requests=st.integers(min_value=0, max_value=40),
    depth=st.integers(min_value=1, max_value=4),
)
def test_burst_then_drain_sheds_exactly_the_overflow(num_requests, depth):
    """An instantaneous burst into an idle shed queue keeps exactly ``depth``."""
    node = ScriptedNode()
    stats = AdmissionStats()
    queue = AdmissionQueue(
        node=node,
        stats=stats,
        on_admit=lambda sender, request: None,
        on_shed=lambda sender, request, hint: None,
        depth=depth,
        policy="shed",
        service_s=0.1,
    )
    for i in range(num_requests):
        queue.offer(f"V-{i}", i)
    assert stats.shed == max(0, num_requests - depth)
    assert len(queue) == min(num_requests, depth)
    node.fire_all()
    assert stats.admitted == min(num_requests, depth)
