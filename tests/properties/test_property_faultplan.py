"""Property-based tests (hypothesis) for the fault-plan schedule.

Three defining properties:

* **round trip** -- ``FaultPlan.from_dict(plan.to_dict()) == plan`` for every
  valid plan, including through a JSON encode/decode;
* **valid plans construct** -- generated schedules that respect the ordering
  rules never raise, and their derived views stay consistent;
* **invalid orderings always raise** -- a recovery with no preceding crash,
  and overlapping partitions sharing a node, are rejected for arbitrary
  event timings.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import (
    ClockSkew,
    CrashNode,
    FaultPlan,
    LossBurst,
    Partition,
    RecoverNode,
)

NODES = ("VC-0", "VC-1", "VC-2", "VC-3")

times = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False)
drifts = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
rates = st.floats(min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False)


@st.composite
def crash_recover_chains(draw):
    """Alternating crash/recover events for one node, strictly increasing times."""
    node = draw(st.sampled_from(NODES))
    count = draw(st.integers(min_value=1, max_value=4))
    stamps = sorted(draw(st.sets(times, min_size=count, max_size=count)))
    events = []
    for i, t in enumerate(stamps):
        cls = CrashNode if i % 2 == 0 else RecoverNode
        events.append(cls(t=t, node=node))
    return tuple(events)


@st.composite
def disjoint_partitions(draw):
    """Partitions over pairwise-disjoint node sets (never an overlap conflict)."""
    count = draw(st.integers(min_value=0, max_value=3))
    events = []
    for i in range(count):
        t0, t1 = sorted(draw(st.sets(times, min_size=2, max_size=2)))
        events.append(
            Partition(t_start=t0, t_end=t1, groups=((f"p{i}-a",), (f"p{i}-b", f"p{i}-c")))
        )
    return tuple(events)


@st.composite
def serial_loss_bursts(draw):
    """Loss bursts over non-overlapping windows."""
    count = draw(st.integers(min_value=0, max_value=3))
    stamps = sorted(draw(st.sets(times, min_size=2 * count, max_size=2 * count)))
    events = []
    for i in range(count):
        events.append(
            LossBurst(t_start=stamps[2 * i], t_end=stamps[2 * i + 1], rate=draw(rates))
        )
    return tuple(events)


@st.composite
def valid_plans(draw):
    chains = draw(st.lists(crash_recover_chains(), max_size=2))
    # Different chains for the same node could interleave invalidly; keep the
    # first chain per node.
    seen, crash_events = set(), []
    for chain in chains:
        node = chain[0].node
        if node in seen:
            continue
        seen.add(node)
        crash_events.extend(chain)
    skews = draw(
        st.lists(
            st.builds(ClockSkew, node=st.sampled_from(NODES), drift=drifts, t=times),
            max_size=2,
        )
    )
    events = (
        tuple(crash_events)
        + draw(disjoint_partitions())
        + draw(serial_loss_bursts())
        + tuple(skews)
    )
    return FaultPlan(events=events, expect_failure=draw(st.booleans()))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(plan=valid_plans())
    def test_dict_round_trip_is_identity(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    @settings(max_examples=60, deadline=None)
    @given(plan=valid_plans())
    def test_json_round_trip_is_identity(self, plan):
        encoded = json.dumps(plan.to_dict())
        assert FaultPlan.from_dict(json.loads(encoded)) == plan


class TestValidPlans:
    @settings(max_examples=60, deadline=None)
    @given(plan=valid_plans())
    def test_views_are_consistent(self, plan):
        assert plan.unrecovered_nodes <= plan.crashed_nodes
        assert plan.is_empty == (len(plan.events) == 0)
        assert len(plan.events_of(CrashNode, RecoverNode, Partition, LossBurst, ClockSkew)) == len(
            plan.events
        )


class TestInvalidOrderings:
    @settings(max_examples=40, deadline=None)
    @given(node=st.sampled_from(NODES), t=times)
    def test_recover_without_crash_always_raises(self, node, t):
        with pytest.raises(ValueError):
            FaultPlan(events=(RecoverNode(t=t, node=node),))

    @settings(max_examples=40, deadline=None)
    @given(node=st.sampled_from(NODES), stamps=st.sets(times, min_size=2, max_size=2))
    def test_crash_twice_always_raises(self, node, stamps):
        t0, t1 = sorted(stamps)
        with pytest.raises(ValueError):
            FaultPlan(events=(CrashNode(t=t0, node=node), CrashNode(t=t1, node=node)))

    @settings(max_examples=40, deadline=None)
    @given(
        shared=st.sampled_from(NODES),
        stamps=st.sets(times, min_size=4, max_size=4),
    )
    def test_overlapping_partitions_with_shared_node_always_raise(self, shared, stamps):
        t0, t1, t2, t3 = sorted(stamps)
        # Windows [t0, t2) and [t1, t3) overlap in [t1, t2); both name `shared`.
        first = Partition(t_start=t0, t_end=t2, groups=((shared,), ("other-a",)))
        second = Partition(t_start=t1, t_end=t3, groups=((shared,), ("other-b",)))
        with pytest.raises(ValueError):
            FaultPlan(events=(first, second))
