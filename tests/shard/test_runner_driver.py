"""Shard runner and sharded driver: determinism and shard-count invariance."""

import pytest

from repro.api import MultiElectionService, ScenarioSpec, ShardingProfile
from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.utils import int_to_bytes
from repro.shard.driver import ShardedElectionDriver
from repro.shard.partition import ShardRange
from repro.shard.shard_runner import ShardRunner

NUM_BALLOTS = 240
SEED = 13
ELECTION_ID = "runner-test"
OPTIONS = ("yes", "no")


@pytest.fixture(scope="module")
def scheme(group):
    public_key = group.power_g(
        group.hash_to_scalar(b"shard-pk", int_to_bytes(SEED))
    )
    return OptionEncodingScheme(len(OPTIONS), public_key, group)


def run_shard(scheme, shard, **kwargs):
    defaults = dict(
        scheme=scheme,
        seed=SEED,
        election_id=ELECTION_ID,
        num_collectors=4,
        consensus_batch_size=32,
    )
    defaults.update(kwargs)
    return ShardRunner(shard, **defaults).run()


class TestShardRunner:
    def test_run_is_deterministic(self, scheme):
        shard = ShardRange(0, 0, 60)
        first = run_shard(scheme, shard)
        second = run_shard(scheme, shard)
        assert first.record == second.record
        assert first.opening == second.opening
        assert first.record_frame == second.record_frame

    def test_record_matches_opening(self, scheme):
        result = run_shard(scheme, ShardRange(0, 0, 60))
        assert sum(result.opening.values) == result.record.ballots_cast
        assert result.record.ballots_registered == 60
        assert scheme.verify_opening(result.record.commitment, result.opening)

    def test_ballot_derivation_ignores_shard_boundaries(self, scheme):
        """A serial's choice/cast status depends only on (seed, id, serial)."""
        wide = ShardRunner(
            ShardRange(0, 0, 200), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        )
        narrow = ShardRunner(
            ShardRange(3, 150, 200), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        )
        for serial in range(150, 200):
            assert wide.choice_of(serial) == narrow.choice_of(serial)
            assert wide._randomness(serial) == narrow._randomness(serial)

    def test_partial_turnout_casts_fewer_ballots(self, scheme):
        full = run_shard(scheme, ShardRange(0, 0, 120), turnout=1.0)
        half = run_shard(scheme, ShardRange(0, 0, 120), turnout=0.5)
        assert half.record.ballots_cast < full.record.ballots_cast
        assert full.record.ballots_cast == 120

    def test_superblocks_take_the_fast_path_when_honest(self, scheme):
        result = run_shard(scheme, ShardRange(0, 0, 64), consensus_batch_size=16)
        assert result.superblocks_fast > 0
        assert result.superblocks_fallback == 0


class TestShardedElectionDriver:
    @pytest.fixture(scope="class")
    def spec(self):
        return ScenarioSpec.preset(
            "national_scale", election_id=ELECTION_ID, seed=SEED
        )

    def outcome_at(self, spec, shards):
        derived = spec.derive(sharding=ShardingProfile(num_shards=shards))
        return ShardedElectionDriver(derived, num_ballots=NUM_BALLOTS).run()

    def test_tally_is_invariant_across_shard_counts(self, spec):
        """Same seed + election id must give the identical election at any
        shard count: equal counts AND a bit-identical combined commitment."""
        reference = self.outcome_at(spec, 1)
        for shards in (3, 8):
            outcome = self.outcome_at(spec, shards)
            assert outcome.num_shards == shards
            assert outcome.tally.as_dict() == reference.tally.as_dict()
            assert outcome.global_record.combined == reference.global_record.combined
            assert outcome.report.ok

    def test_outcome_accounts_for_every_ballot(self, spec):
        outcome = self.outcome_at(spec, 4)
        assert outcome.num_ballots == NUM_BALLOTS
        registered = sum(s["ballots_registered"] for s in outcome.shard_stats)
        assert registered == NUM_BALLOTS
        assert outcome.global_record.total_cast == sum(outcome.tally.counts)
        assert outcome.ballots_per_s > 0

    def test_shard_results_stream_into_the_merge(self, spec):
        seen = []
        derived = spec.derive(sharding=ShardingProfile(num_shards=4))
        driver = ShardedElectionDriver(
            derived, num_ballots=NUM_BALLOTS, on_shard=seen.append
        )
        driver.run()
        assert [r.shard_id for r in seen] == [0, 1, 2, 3]


class TestServiceRunSharded:
    def test_run_sharded_end_to_end(self):
        spec = ScenarioSpec.preset(
            "national_scale", election_id=ELECTION_ID, seed=SEED
        )
        service = MultiElectionService()
        report = service.run_sharded(spec, num_ballots=NUM_BALLOTS)
        assert report.verified
        assert report.name == ELECTION_ID
        assert service.sharded_reports[ELECTION_ID] is report
        assert sum(report.tally.values()) == report.outcome.global_record.total_cast

    def test_duplicate_name_is_rejected(self):
        spec = ScenarioSpec.preset("national_scale", election_id=ELECTION_ID)
        service = MultiElectionService()
        service.run_sharded(spec, num_ballots=40)
        with pytest.raises(ValueError, match="already ran"):
            service.run_sharded(spec, num_ballots=40)
