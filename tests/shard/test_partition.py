"""Shard plans: validated ranges, routing, and boundary-respecting blocks."""

import pytest

from repro.consensus.batching import partition_serials
from repro.shard.partition import ShardPlan, ShardRange, sharded_partition


class TestShardRange:
    def test_span_and_membership(self):
        shard = ShardRange(0, 10, 20)
        assert shard.span == 10
        assert 10 in shard and 19 in shard
        assert 9 not in shard and 20 not in shard

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ShardRange(0, 5, 5)

    def test_rejects_negative_serials(self):
        with pytest.raises(ValueError):
            ShardRange(0, -1, 5)


class TestShardPlan:
    def test_split_tiles_the_space(self):
        plan = ShardPlan.split(0, 100, 4)
        assert plan.num_shards == 4
        assert [(r.lo, r.hi) for r in plan.ranges] == [
            (0, 25), (25, 50), (50, 75), (75, 100),
        ]

    def test_split_degrades_when_space_is_small(self):
        plan = ShardPlan.split(0, 3, 16)
        assert plan.num_shards == 3
        assert all(r.span == 1 for r in plan.ranges)

    def test_rejects_gap_between_ranges(self):
        with pytest.raises(ValueError):
            ShardPlan((ShardRange(0, 0, 10), ShardRange(1, 11, 20)))

    def test_rejects_out_of_order_ids(self):
        with pytest.raises(ValueError):
            ShardPlan((ShardRange(1, 0, 10), ShardRange(0, 10, 20)))

    def test_shard_of_matches_membership(self):
        plan = ShardPlan.split(0, 97, 5)
        for serial in range(97):
            shard = plan.ranges[plan.shard_of(serial)]
            assert serial in shard

    def test_shard_of_rejects_serials_outside_the_plan(self):
        plan = ShardPlan.split(10, 20, 2)
        with pytest.raises(KeyError):
            plan.shard_of(9)
        with pytest.raises(KeyError):
            plan.shard_of(20)

    def test_route_groups_every_serial_once(self):
        plan = ShardPlan.split(0, 50, 3)
        routed = plan.route(range(50))
        assert sorted(s for group in routed.values() for s in group) == list(range(50))
        for shard_id, serials in routed.items():
            assert all(s in plan.ranges[shard_id] for s in serials)

    def test_from_serials_balances_ballot_counts(self):
        serials = [i * 7 + 3 for i in range(40)]
        plan = ShardPlan.from_serials(serials, 4)
        routed = plan.route(serials)
        assert [len(routed[i]) for i in range(4)] == [10, 10, 10, 10]

    def test_from_serials_is_deterministic(self):
        serials = list(range(0, 1000, 13))
        assert ShardPlan.from_serials(serials, 8) == ShardPlan.from_serials(serials, 8)

    def test_dict_round_trip(self):
        plan = ShardPlan.split(5, 500, 7)
        assert ShardPlan.from_dict(plan.to_dict()) == plan


class TestShardedPartition:
    def test_blocks_never_cross_shard_boundaries(self):
        serials = list(range(100))
        plan = ShardPlan.from_serials(serials, 4)
        blocks = sharded_partition(serials, 4, batch_size=8)
        for block in blocks:
            shards = {plan.shard_of(serial) for serial in block}
            assert len(shards) == 1

    def test_covers_every_serial_exactly_once(self):
        serials = list(range(0, 300, 3))
        blocks = sharded_partition(serials, 5, batch_size=16)
        flat = [serial for block in blocks for serial in block]
        assert sorted(flat) == serials

    def test_single_shard_matches_flat_partition(self):
        serials = list(range(57))
        assert sharded_partition(serials, 1, batch_size=10) == partition_serials(
            serials, 10
        )
