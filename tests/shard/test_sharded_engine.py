"""Full-fidelity engine path with sharding: bit-identical outcomes.

The acceptance bar for the sharded pipeline is that sharding changes memory
behaviour, never the election: the sharded tally and audit must match the
unsharded run bit-for-bit.  These tests run the ``national_scale`` preset
(which ships with ``num_shards=4``) against an unsharded derivation of the
same spec and compare the canonical outcome hashes, on every registered
crypto backend.
"""

import pytest

from repro.analysis.determinism import default_choices, outcome_hash, run_once
from repro.api import CryptoProfile, ElectionEngine, ScenarioSpec, ShardingProfile
from repro.api.events import ShardMergeCompleted
from repro.crypto.registry import available_backends

PRESET = "national_scale"


@pytest.fixture(scope="module")
def spec():
    return ScenarioSpec.preset(PRESET, seed=5)


@pytest.fixture(scope="module")
def sharded_outcome(spec):
    return ElectionEngine(spec).run(default_choices(spec))


class TestShardedEngineRun:
    def test_preset_actually_shards(self, spec):
        assert spec.sharding.num_shards > 1
        assert spec.to_election_parameters().num_shards == spec.sharding.num_shards

    def test_outcome_hash_matches_unsharded(self, spec, sharded_outcome):
        unsharded = spec.derive(sharding=ShardingProfile(num_shards=1))
        _, unsharded_hash = run_once(unsharded)
        assert outcome_hash(sharded_outcome) == unsharded_hash

    def test_shard_commits_published_and_verified(self, spec, sharded_outcome):
        report = sharded_outcome.shard_commits
        assert report is not None and report.ok
        assert len(report.records) == spec.sharding.num_shards
        assert report.global_record.total_cast == sum(
            r.ballots_cast for r in report.records
        )
        # Registered ballots tile across the shards with no loss.
        registered = sum(r.ballots_registered for r in report.records)
        assert registered == spec.num_voters

    def test_merge_phase_emits_event_and_timing(self, spec, sharded_outcome):
        merges = [
            e for e in sharded_outcome.events if isinstance(e, ShardMergeCompleted)
        ]
        assert len(merges) == 1
        assert merges[0].verified
        assert merges[0].num_shards == spec.sharding.num_shards
        assert "merge" in sharded_outcome.phase_timings

    def test_unsharded_run_skips_the_merge_phase(self, spec):
        unsharded = spec.derive(sharding=ShardingProfile(num_shards=1))
        outcome = ElectionEngine(unsharded).run(default_choices(unsharded))
        assert outcome.shard_commits is None
        assert not any(
            isinstance(e, ShardMergeCompleted) for e in outcome.events
        )
        assert "merge" not in outcome.phase_timings

    def test_audit_passes_on_the_sharded_run(self, sharded_outcome):
        assert sharded_outcome.audit_report is not None
        assert sharded_outcome.audit_report.passed


class TestEveryBackend:
    @pytest.mark.parametrize("backend", available_backends())
    def test_sharded_equals_unsharded_on(self, backend):
        spec = ScenarioSpec.preset(PRESET, seed=5).derive(
            crypto=CryptoProfile(backend=backend)
        )
        _, sharded_hash = run_once(spec)
        _, flat_hash = run_once(spec.derive(sharding=ShardingProfile(num_shards=1)))
        assert sharded_hash == flat_hash
