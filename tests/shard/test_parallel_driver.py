"""Parallel shard driver: worker-count invariance, memory bound, failure path."""

import pytest

from repro.api import MultiElectionService, ScenarioSpec, ShardingProfile
from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.utils import int_to_bytes
from repro.net.codec import MessageCodec, WireFormatError
from repro.shard import (
    ParallelShardedElectionDriver,
    ShardExecutionError,
    ShardRange,
    ShardRunner,
    ShardSliceResult,
    ShardedElectionDriver,
    VoteCodeRejected,
    shard_worker_pool,
)
from repro.shard.parallel_driver import worker_initargs

NUM_BALLOTS = 240
SEED = 13
ELECTION_ID = "parallel-driver-test"


@pytest.fixture(scope="module")
def spec():
    return ScenarioSpec.preset(
        "national_scale", election_id=ELECTION_ID, seed=SEED
    ).derive(sharding=ShardingProfile(num_shards=4))


@pytest.fixture(scope="module")
def pool(spec):
    """One warm pool shared by every test in this module (same election)."""
    with shard_worker_pool(spec, workers=2) as shared:
        yield shared


@pytest.fixture(scope="module")
def sequential(spec):
    return ShardedElectionDriver(spec, num_ballots=NUM_BALLOTS).run()


def encode(spec, record):
    return MessageCodec(group=spec.crypto.build_group()).encode(record)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_sequential(self, spec, sequential, workers):
        """The non-negotiable invariant: the global commit record's canonical
        wire frame (tally, commitments, digests and all) must not depend on
        the worker count or completion order."""
        outcome = ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, workers=workers
        ).run()
        assert outcome.report.ok
        assert outcome.tally.as_dict() == sequential.tally.as_dict()
        assert encode(spec, outcome.global_record) == encode(
            spec, sequential.global_record
        )

    def test_shard_stats_cover_every_shard(self, spec, pool):
        outcome = ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, pool=pool
        ).run()
        assert sorted(s["shard_id"] for s in outcome.shard_stats) == [0, 1, 2, 3]
        registered = sum(s["ballots_registered"] for s in outcome.shard_stats)
        assert registered == NUM_BALLOTS

    def test_on_shard_sees_every_result(self, spec, pool):
        seen = []
        ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, pool=pool, on_shard=seen.append
        ).run()
        assert sorted(r.shard_id for r in seen) == [0, 1, 2, 3]
        assert all(isinstance(r, ShardSliceResult) for r in seen)


class TestPoolLifecycle:
    def test_shared_pool_survives_runs_and_is_validated(self, spec, pool):
        first = ParallelShardedElectionDriver(spec, num_ballots=80, pool=pool).run()
        second = ParallelShardedElectionDriver(spec, num_ballots=80, pool=pool).run()
        assert pool.started  # the driver must not shut down a borrowed pool
        assert first.tally.as_dict() == second.tally.as_dict()

    def test_pool_warmed_for_another_election_is_rejected(self, spec, pool):
        other = spec.derive(election_id="some-other-election")
        assert worker_initargs(other) != worker_initargs(spec)
        with pytest.raises(ValueError, match="warmed for"):
            ParallelShardedElectionDriver(other, num_ballots=80, pool=pool)

    def test_owned_pool_is_shut_down_after_the_run(self, spec):
        driver = ParallelShardedElectionDriver(spec, num_ballots=80, workers=2)
        driver.run()
        assert driver._owns_pool

    def test_workers_below_one_are_rejected(self, spec):
        with pytest.raises(ValueError, match="workers"):
            ParallelShardedElectionDriver(spec, num_ballots=80, workers=0)


class TestInflightBound:
    def test_peak_inflight_respects_the_cap(self, spec, pool):
        driver = ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, pool=pool, max_inflight_shards=1
        )
        driver.run()
        assert driver.peak_inflight == 1

    def test_default_cap_allows_pipelining(self, spec, pool):
        driver = ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, pool=pool
        )
        driver.run()
        assert 1 <= driver.peak_inflight <= 2 * pool.workers

    def test_spec_cap_is_used_when_not_overridden(self, spec):
        capped = spec.derive(
            sharding=ShardingProfile(num_shards=4, workers=2, max_inflight_shards=1)
        )
        driver = ParallelShardedElectionDriver(capped, num_ballots=NUM_BALLOTS)
        driver.run()
        assert driver.peak_inflight == 1


class TestWorkerFailure:
    def test_failed_shard_is_named_and_pool_survives(self, spec, pool):
        """A worker raising mid-shard surfaces the shard id; the shared pool
        stays usable for the next run (the failure cancelled stragglers but
        did not poison the workers)."""
        driver = ParallelShardedElectionDriver(
            spec,
            num_ballots=NUM_BALLOTS,
            pool=pool,
            tampered_codes={130: b"forged-code-0000"},  # serial in shard 2
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            driver.run()
        assert excinfo.value.shard_id == 2
        assert isinstance(excinfo.value.__cause__.__cause__, VoteCodeRejected)
        # the pool is still good: a clean run right after succeeds
        outcome = ParallelShardedElectionDriver(
            spec, num_ballots=NUM_BALLOTS, pool=pool
        ).run()
        assert outcome.report.ok

    def test_owned_pool_is_shut_down_on_failure(self, spec):
        driver = ParallelShardedElectionDriver(
            spec,
            num_ballots=NUM_BALLOTS,
            workers=2,
            tampered_codes={10: b"forged-code-0000"},
        )
        with pytest.raises(ShardExecutionError):
            driver.run()


class TestWireRoundTrip:
    @pytest.fixture(scope="class")
    def result(self, group):
        scheme = OptionEncodingScheme(
            2, group.power_g(group.hash_to_scalar(b"shard-pk", int_to_bytes(SEED))), group
        )
        return ShardRunner(
            ShardRange(0, 0, 60), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        ).run()

    def test_round_trip_is_lossless(self, result, group):
        wire = result.to_wire_dict()
        rebuilt = ShardSliceResult.from_wire_dict(wire, MessageCodec(group=group))
        assert rebuilt.record == result.record
        assert rebuilt.opening == result.opening
        assert rebuilt.record_frame == result.record_frame
        assert rebuilt.counts == result.counts

    def test_wire_dict_carries_only_primitives(self, result):
        """The process-boundary form must never contain group elements."""
        wire = result.to_wire_dict()
        assert isinstance(wire["record_frame"], bytes)
        assert all(type(v) is int for v in wire["opening_values"])
        assert all(type(r) is int for r in wire["opening_randomness"])
        assert all(type(c) is int for c in wire["counts"])

    def test_non_record_frame_is_rejected(self, result, group):
        codec = MessageCodec(group=group)
        wire = dict(result.to_wire_dict())
        wire["record_frame"] = codec.encode(result.record.commitment)
        with pytest.raises(WireFormatError, match="ShardCommitRecord"):
            ShardSliceResult.from_wire_dict(wire, codec)


class TestAdmissionCheck:
    """The admission check must be live: a tampered code is rejected."""

    @pytest.fixture(scope="class")
    def scheme(self, group):
        return OptionEncodingScheme(
            2, group.power_g(group.hash_to_scalar(b"shard-pk", int_to_bytes(SEED))), group
        )

    def cast_serial(self, runner):
        for serial in range(runner.shard.lo, runner.shard.hi):
            if runner.is_cast(runner._ballot_digest(serial)):
                return serial
        raise AssertionError("no cast serial in range")

    def test_honest_codes_pass(self, scheme):
        result = ShardRunner(
            ShardRange(0, 0, 60), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        ).run()
        assert result.record.ballots_cast > 0

    def test_tampered_code_is_rejected(self, scheme):
        probe = ShardRunner(
            ShardRange(0, 0, 60), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        )
        victim = self.cast_serial(probe)
        runner = ShardRunner(
            ShardRange(0, 0, 60),
            scheme=scheme,
            seed=SEED,
            election_id=ELECTION_ID,
            tampered_codes={victim: b"not-the-real-code"},
        )
        with pytest.raises(VoteCodeRejected) as excinfo:
            runner.run()
        assert excinfo.value.serial == victim
        assert excinfo.value.shard_id == 0

    def test_tampering_an_abstaining_serial_is_harmless(self, scheme):
        probe = ShardRunner(
            ShardRange(0, 0, 60),
            scheme=scheme,
            seed=SEED,
            election_id=ELECTION_ID,
            turnout=0.5,
        )
        abstainer = next(
            serial
            for serial in range(60)
            if not probe.is_cast(probe._ballot_digest(serial))
        )
        runner = ShardRunner(
            ShardRange(0, 0, 60),
            scheme=scheme,
            seed=SEED,
            election_id=ELECTION_ID,
            turnout=0.5,
            tampered_codes={abstainer: b"never-submitted"},
        )
        assert runner.run().record.ballots_cast > 0

    def test_commitment_table_is_independent_of_submissions(self, scheme):
        """The EA table depends only on election data, never on what voters
        submit -- tampering must not move the reference the check uses."""
        honest = ShardRunner(
            ShardRange(0, 0, 60), scheme=scheme, seed=SEED, election_id=ELECTION_ID
        )
        tampered = ShardRunner(
            ShardRange(0, 0, 60),
            scheme=scheme,
            seed=SEED,
            election_id=ELECTION_ID,
            tampered_codes={5: b"forged"},
        )
        assert honest.ea_commitment_table() == tampered.ea_commitment_table()


class TestServiceRouting:
    def test_parallel_profile_routes_to_the_pool_driver(self):
        base = ScenarioSpec.preset(
            "national_scale", election_id="svc-parallel", seed=SEED
        )
        sequential_spec = base.derive(sharding=ShardingProfile(num_shards=4))
        parallel_spec = base.derive(
            sharding=ShardingProfile(num_shards=4, workers=2, max_inflight_shards=2)
        )
        assert not sequential_spec.sharding.parallel
        assert parallel_spec.sharding.parallel
        sequential = MultiElectionService().run_sharded(
            sequential_spec, num_ballots=NUM_BALLOTS
        )
        parallel = MultiElectionService().run_sharded(
            parallel_spec, num_ballots=NUM_BALLOTS
        )
        assert parallel.verified
        assert parallel.tally == sequential.tally
