"""Streaming combiners: incremental folding equals all-at-once combination."""

import pytest

from repro.core.tally import combine_tally_commitments, open_tally
from repro.crypto.commitments import OptionCommitment, OptionEncodingScheme
from repro.crypto.utils import RandomSource
from repro.shard.streaming import (
    StreamingCommitmentCombiner,
    StreamingOpeningCombiner,
    StreamingTally,
)

NUM_OPTIONS = 3


@pytest.fixture(scope="module")
def scheme(group):
    return OptionEncodingScheme(NUM_OPTIONS, group.power_g(7), group)


@pytest.fixture(scope="module")
def ballots(scheme):
    """Twelve committed ballots with a known option pattern."""
    rng = RandomSource(42)
    pattern = [0, 1, 2, 1, 1, 0, 2, 2, 2, 1, 0, 1]
    return [scheme.commit_option(option, rng) for option in pattern]


class TestStreamingCommitmentCombiner:
    def test_matches_flat_combination(self, scheme, ballots):
        combiner = StreamingCommitmentCombiner(scheme)
        for commitment, _ in ballots:
            combiner.add(commitment)
        flat = combine_tally_commitments(scheme, [c for c, _ in ballots])
        assert combiner.result() == flat
        assert combiner.count == len(ballots)

    def test_empty_is_the_homomorphic_identity(self, scheme, ballots):
        identity = StreamingCommitmentCombiner(scheme).result()
        single = ballots[0][0]
        assert identity * single == single

    def test_shard_products_fold_to_the_same_element(self, scheme, ballots):
        """Folding shard-by-shard equals folding ballot-by-ballot."""
        flat = combine_tally_commitments(scheme, [c for c, _ in ballots])
        outer = StreamingCommitmentCombiner(scheme)
        for start in (0, 5, 9):
            inner = StreamingCommitmentCombiner(scheme)
            for commitment, _ in ballots[start : start + (5 if start == 0 else 4)]:
                inner.add(commitment)
            outer.add(inner.result())
        assert outer.result() == flat

    def test_rejects_wrong_width(self, scheme, group):
        other = OptionEncodingScheme(NUM_OPTIONS + 1, group.power_g(7), group)
        commitment, _ = other.commit_option(0, RandomSource(1))
        with pytest.raises(ValueError):
            StreamingCommitmentCombiner(scheme).add(commitment)


class TestStreamingOpeningCombiner:
    def test_sums_values_and_randomness(self, scheme, ballots):
        combiner = StreamingOpeningCombiner(scheme)
        for _, opening in ballots:
            combiner.add(opening)
        total = combiner.result()
        assert list(total.values) == [3, 5, 4]
        # The summed opening must open the combined commitment.
        flat = combine_tally_commitments(scheme, [c for c, _ in ballots])
        result = open_tally(scheme, flat, total, ("a", "b", "c"))
        assert result.as_dict() == {"a": 3, "b": 5, "c": 4}


class TestStreamingTally:
    def test_single_flush_equals_per_ballot_product(self, scheme):
        """Enc(pk, Σv, Σr) must equal the product of per-ballot commitments."""
        rng = RandomSource(7)
        order = scheme.group.order
        tally = StreamingTally(scheme)
        flat = StreamingCommitmentCombiner(scheme)
        for option in [2, 0, 1, 1, 2, 2, 0]:
            randomness = tuple(scheme.group.random_scalar(rng) for _ in range(NUM_OPTIONS))
            tally.add_vote(option, randomness)
            vector = scheme.unit_vector(option)
            ciphertexts = tuple(
                scheme.elgamal.encrypt(scheme.public_key, v, randomness=r)
                for v, r in zip(vector, randomness, strict=True)
            )
            flat.add(OptionCommitment(ciphertexts))
        assert tally.counts == (2, 2, 3)
        assert tally.commit() == flat.result()

    def test_opening_opens_the_commitment(self, scheme):
        rng = RandomSource(8)
        tally = StreamingTally(scheme)
        for option in [0, 0, 1]:
            tally.add_vote(
                option,
                tuple(scheme.group.random_scalar(rng) for _ in range(NUM_OPTIONS)),
            )
        result = open_tally(scheme, tally.commit(), tally.opening(), ("x", "y", "z"))
        assert result.as_dict() == {"x": 2, "y": 1, "z": 0}

    def test_rejects_bad_inputs(self, scheme):
        tally = StreamingTally(scheme)
        with pytest.raises(ValueError):
            tally.add_vote(NUM_OPTIONS, (1, 2, 3))
        with pytest.raises(ValueError):
            tally.add_vote(0, (1, 2))
