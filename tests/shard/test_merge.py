"""Cross-shard commit: coverage checks, opening verification, tamper detection."""

import dataclasses

import pytest

from repro.crypto.commitments import OptionEncodingScheme
from repro.crypto.utils import RandomSource
from repro.shard.merge import (
    CrossShardCommit,
    MergeError,
    ShardCommitReport,
    record_digest,
    verify_shard_records,
)
from repro.shard.records import GlobalCommitRecord, ShardCommitRecord
from repro.shard.streaming import StreamingTally

OPTIONS = ("yes", "no")


@pytest.fixture(scope="module")
def scheme(group):
    return OptionEncodingScheme(len(OPTIONS), group.power_g(11), group)


def make_shard(scheme, shard_id, lo, hi, votes, seed):
    """One shard contribution: record + opening for a given vote pattern."""
    rng = RandomSource(seed)
    tally = StreamingTally(scheme)
    for option in votes:
        tally.add_vote(
            option, tuple(scheme.group.random_scalar(rng) for _ in OPTIONS)
        )
    record = ShardCommitRecord(
        shard_id=shard_id,
        serial_lo=lo,
        serial_hi=hi,
        ballots_registered=hi - lo,
        ballots_cast=len(votes),
        commitment=tally.commit(),
        vote_set_digest=bytes([shard_id]) * 32,
        sender=f"shard-{shard_id}",
    )
    return record, tally.opening()


@pytest.fixture(scope="module")
def shards(scheme):
    return [
        make_shard(scheme, 0, 0, 10, [0, 0, 1], seed=1),
        make_shard(scheme, 1, 10, 20, [1, 1, 0, 0], seed=2),
        make_shard(scheme, 2, 20, 30, [0], seed=3),
    ]


class TestRecords:
    def test_record_rejects_bad_counts(self, shards):
        record, _ = shards[0]
        with pytest.raises(ValueError):
            dataclasses.replace(record, ballots_cast=record.ballots_registered + 1)
        with pytest.raises(ValueError):
            dataclasses.replace(record, serial_hi=record.serial_lo)

    def test_global_record_validates_shape(self, scheme, shards):
        record, _ = shards[0]
        with pytest.raises(ValueError):
            GlobalCommitRecord(
                election_id="e",
                num_shards=2,
                total_cast=3,
                combined=record.commitment,
                shard_digests=(b"\x00" * 32,),
            )

    def test_record_digest_is_canonical_and_tamper_evident(self, shards):
        record, _ = shards[0]
        assert record_digest(record) == record_digest(record)
        tampered = dataclasses.replace(record, ballots_cast=record.ballots_cast - 1)
        assert record_digest(tampered) != record_digest(record)


class TestCrossShardCommit:
    def test_happy_path_commits_and_opens(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        for record, opening in shards:
            commit.prepare(record, opening)
        assert commit.prepared == 3
        assert commit.total_cast == 8
        global_record = commit.commit("merge-test")
        assert global_record.num_shards == 3
        assert global_record.total_cast == 8
        # yes: 2+2+1, no: 1+2+0
        tally = commit.open_merged_tally(OPTIONS)
        assert tally.as_dict() == {"yes": 5, "no": 3}
        assert verify_shard_records(
            scheme, commit.records_in_order(), global_record
        ) == []

    def test_arrival_order_does_not_change_the_commit(self, scheme, shards):
        forward = CrossShardCommit(scheme)
        for record, opening in shards:
            forward.prepare(record, opening)
        backward = CrossShardCommit(scheme)
        for record, opening in reversed(shards):
            backward.prepare(record, opening)
        assert forward.commit("e").combined == backward.commit("e").combined

    def test_rejects_duplicate_shard(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        commit.prepare(*shards[0])
        with pytest.raises(MergeError, match="prepared twice"):
            commit.prepare(*shards[0])

    def test_rejects_serial_gap(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        commit.prepare(*shards[0])
        record, opening = shards[1]
        commit.prepare(dataclasses.replace(record, serial_lo=11), opening)
        commit.prepare(*shards[2])
        with pytest.raises(MergeError, match="tile"):
            commit.commit("e")

    def test_rejects_missing_shard(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        commit.prepare(*shards[0])
        commit.prepare(*shards[2])
        with pytest.raises(MergeError, match="contiguous"):
            commit.commit("e")

    def test_rejects_opening_count_mismatch(self, scheme, shards):
        record, opening = shards[0]
        commit = CrossShardCommit(scheme)
        with pytest.raises(MergeError, match="opening sums"):
            commit.prepare(dataclasses.replace(record, ballots_cast=2), opening)

    def test_batch_verification_catches_a_lying_shard(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        commit.prepare(*shards[0])
        commit.prepare(*shards[1])
        record, opening = shards[2]
        # Claim shard 0's commitment with shard 2's (non-matching) opening.
        forged = dataclasses.replace(
            record, commitment=shards[0][0].commitment, ballots_cast=1
        )
        commit.prepare(forged, opening)
        with pytest.raises(MergeError, match="batch verification"):
            commit.commit("e")

    def test_combined_opening_requires_every_shard(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        commit.prepare(shards[0][0], shards[0][1])
        commit.prepare(shards[1][0], None)
        with pytest.raises(MergeError, match="without openings"):
            commit.combined_opening()


class TestVerifyShardRecords:
    @pytest.fixture()
    def committed(self, scheme, shards):
        commit = CrossShardCommit(scheme)
        for record, opening in shards:
            commit.prepare(record, opening)
        return tuple(commit.records_in_order()), commit.commit("verify-test")

    def test_clean_commit_verifies(self, scheme, committed):
        records, global_record = committed
        assert verify_shard_records(scheme, records, global_record) == []

    def test_detects_swapped_commitment(self, scheme, committed):
        records, global_record = committed
        tampered = list(records)
        tampered[1] = dataclasses.replace(
            tampered[1], commitment=records[0].commitment
        )
        problems = verify_shard_records(scheme, tampered, global_record)
        assert any("recombined" in p for p in problems)

    def test_detects_count_inflation(self, scheme, committed):
        records, global_record = committed
        tampered = list(records)
        tampered[0] = dataclasses.replace(tampered[0], ballots_cast=7)
        problems = verify_shard_records(scheme, tampered, global_record)
        assert any("cast ballots" in p for p in problems)
        assert any("digests" in p for p in problems)

    def test_report_ok_reflects_problems(self, committed):
        records, global_record = committed
        assert ShardCommitReport(records, global_record).ok
        assert not ShardCommitReport(records, None).ok
        assert not ShardCommitReport(records, global_record, ("bad",)).ok
