"""Tests for the safety / verifiability / privacy bounds (Theorems 2-4)."""

import pytest

from repro.analysis.verification import (
    e2e_verifiability_error,
    fraud_undetected_probability,
    minimum_bb_nodes,
    minimum_vc_nodes,
    privacy_adversary_work_bound,
    safety_failure_probability,
    safety_failure_probability_union,
)


class TestSafety:
    def test_single_voter_bound_is_tiny(self):
        assert safety_failure_probability(1) < 1e-18
        assert safety_failure_probability(5) < 1e-17

    def test_bound_grows_with_faulty_nodes(self):
        assert safety_failure_probability(5) > safety_failure_probability(1)

    def test_zero_faulty_nodes_means_zero_probability(self):
        assert safety_failure_probability(0) == 0.0

    def test_union_bound_scales_with_voters(self):
        single = safety_failure_probability(2)
        union = safety_failure_probability_union(1_000_000, 2)
        assert union == pytest.approx(1_000_000 * single)

    def test_union_bound_capped_at_one(self):
        assert safety_failure_probability_union(10 ** 30, 5, receipt_bits=8) == 1.0

    def test_national_scale_deployment_is_still_safe(self):
        """235 million voters, 5 faulty VC nodes: still astronomically safe."""
        assert safety_failure_probability_union(235_000_000, 5) < 1e-9

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            safety_failure_probability(-1)
        with pytest.raises(ValueError):
            safety_failure_probability_union(-1, 1)


class TestVerifiability:
    def test_error_formula(self):
        assert e2e_verifiability_error(10, 5) == pytest.approx(2 ** -10 + 2 ** -5)

    def test_error_shrinks_with_more_auditing_voters(self):
        assert e2e_verifiability_error(20, 10) < e2e_verifiability_error(5, 10)

    def test_error_shrinks_with_larger_deviation(self):
        assert e2e_verifiability_error(10, 20) < e2e_verifiability_error(10, 5)

    def test_error_capped_at_one(self):
        assert e2e_verifiability_error(0, 0) == 1.0

    def test_fraud_undetected_matches_paper_example(self):
        assert fraud_undetected_probability(10) == pytest.approx(0.0009765625)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            e2e_verifiability_error(-1, 1)
        with pytest.raises(ValueError):
            fraud_undetected_probability(-1)


class TestPrivacyAndThresholds:
    def test_privacy_work_bound_grows_with_corruption(self):
        assert privacy_adversary_work_bound(64, 1000, 5) > privacy_adversary_work_bound(8, 1000, 5)

    def test_privacy_work_bound_is_polynomial_for_small_phi(self):
        # For phi = 40 corrupted voters, 1M voters and 5 options the reduction
        # runs in well under 2^200 steps, far below a 256-bit hardness level.
        assert privacy_adversary_work_bound(40, 1_000_000, 5) < 256

    def test_privacy_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            privacy_adversary_work_bound(-1, 10, 2)

    def test_minimum_subsystem_sizes(self):
        assert minimum_vc_nodes(1) == 4
        assert minimum_vc_nodes(5) == 16
        assert minimum_bb_nodes(1) == 3
        assert minimum_bb_nodes(3) == 7

    def test_minimum_sizes_reject_negative(self):
        with pytest.raises(ValueError):
            minimum_vc_nodes(-1)
        with pytest.raises(ValueError):
            minimum_bb_nodes(-1)
