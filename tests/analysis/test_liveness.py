"""Tests for the liveness analysis (Theorem 1 / Table I)."""

import pytest

from repro.analysis.liveness import (
    failed_attempt_probability,
    liveness_table,
    receipt_deadline_guaranteed,
    receipt_probability_lower_bound,
    table_as_rows,
    twait,
)


class TestTwait:
    def test_formula_matches_paper(self):
        """Twait = (2Nv + 4) Tcomp + 12 Delta + 6 delta."""
        assert twait(4, 1.0, 1.0, 1.0) == (2 * 4 + 4) + 12 + 6
        assert twait(16, 0.5, 2.0, 3.0) == 36 * 0.5 + 12 * 2.0 + 6 * 3.0

    def test_twait_grows_with_every_parameter(self):
        base = twait(4, 1.0, 1.0, 1.0)
        assert twait(7, 1.0, 1.0, 1.0) > base
        assert twait(4, 2.0, 1.0, 1.0) > base
        assert twait(4, 1.0, 2.0, 1.0) > base
        assert twait(4, 1.0, 1.0, 2.0) > base

    def test_invalid_vc_count(self):
        with pytest.raises(ValueError):
            twait(0, 1, 1, 1)


class TestTable:
    def test_table_has_fifteen_steps(self):
        assert len(liveness_table()) == 15

    def test_final_voter_clock_equals_twait(self):
        """The last row's Clock[V] bound is exactly T + Twait."""
        for num_vc in (4, 7, 16):
            last = liveness_table()[-1]
            assert last.voter_clock.evaluate(num_vc, 1.0, 1.0, 1.0) == pytest.approx(
                twait(num_vc, 1.0, 1.0, 1.0)
            )

    def test_bounds_are_monotone_down_the_table(self):
        """Each step's global-clock bound is at least the previous step's."""
        rows = table_as_rows(7, tcomp=0.01, drift_bound=0.1, delay_bound=0.05)
        globals_ = [row["global_clock"] for row in rows]
        assert globals_ == sorted(globals_)

    def test_formula_rendering(self):
        last = liveness_table()[-1]
        assert last.voter_clock.formula() == "T + (2Nv+4)Tcomp + 12D + 6d"
        assert last.voter_clock.formula(num_vc=4) == "T + 12Tcomp + 12D + 6d"

    def test_numeric_rows_contain_all_columns(self):
        rows = table_as_rows(4, 0.01, 0.1, 0.05)
        assert set(rows[0]) == {
            "step", "global_clock", "voter_clock", "responder_clock", "honest_vc_clocks",
        }


class TestReceiptProbability:
    def test_guaranteed_deadline(self):
        """Condition 1: engaged by Tend - (fv+1) Twait => receipt guaranteed."""
        deadline = receipt_deadline_guaranteed(4, 1.0, 1.0, 1.0, election_end=1_000.0)
        assert deadline == 1_000.0 - 2 * twait(4, 1.0, 1.0, 1.0)

    def test_probability_bound_monotone(self):
        bounds = [receipt_probability_lower_bound(y) for y in range(5)]
        assert bounds == sorted(bounds)
        assert bounds[0] == 0.0
        assert bounds[1] == pytest.approx(1 - 1 / 3)

    def test_probability_bound_rejects_negative(self):
        with pytest.raises(ValueError):
            receipt_probability_lower_bound(-1)

    def test_failed_attempt_probability_below_three_power(self):
        """The exact product is below the 3^-y bound used in the proof."""
        for num_vc, fv in ((4, 1), (7, 2), (16, 5)):
            for attempts in range(1, fv + 1):
                exact = failed_attempt_probability(num_vc, fv, attempts)
                assert exact < 3.0 ** (-attempts)

    def test_failed_attempts_zero_when_exceeding_faulty(self):
        assert failed_attempt_probability(4, 1, 2) == 0.0

    def test_failed_attempt_rejects_impossible_config(self):
        with pytest.raises(ValueError):
            failed_attempt_probability(4, 5, 1)
