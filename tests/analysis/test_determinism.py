"""Tests for the determinism harness and the chaos scenario matrix.

The acceptance bar for the chaos subsystem:

* every preset run twice at the same seed yields bit-identical outcome
  hashes (determinism);
* a mid-election VC crash followed by recovery completes with the SAME tally
  as the fault-free run of the same seed (recovery correctness);
* liveness holds with ``fv`` crashed VC nodes and fails with ``fv + 1`` --
  the ``Nv >= 3 fv + 1`` bound is exact;
* the matrix covers >= 20 scenarios and every one passes determinism,
  safety, and the expected liveness verdict.
"""

import json

import pytest

from repro.analysis.determinism import (
    check_scenario,
    default_choices,
    is_live,
    outcome_hash,
    run_once,
    safety_violations,
)
from repro.api.spec import PRESETS, CrashNode, FaultPlan, RecoverNode, ScenarioSpec
from repro.chaos.matrix import build_matrix, run_matrix


@pytest.fixture(scope="module")
def fast_spec():
    """A short-window scenario all tests in this module share."""
    return ScenarioSpec(
        options=("option-1", "option-2"),
        num_voters=4,
        num_vc=4,
        num_bb=3,
        num_trustees=3,
        trustee_threshold=2,
        election_end=200.0,
        seed=11,
    )


class TestOutcomeHash:
    def test_identical_runs_hash_identically(self, fast_spec):
        _, first = run_once(fast_spec)
        _, second = run_once(fast_spec)
        assert first == second

    def test_different_seeds_hash_differently(self, fast_spec):
        _, first = run_once(fast_spec)
        _, second = run_once(fast_spec, seed=fast_spec.seed + 1)
        assert first != second

    def test_hash_is_hex_sha256(self, fast_spec):
        _, digest = run_once(fast_spec)
        assert len(digest) == 64
        int(digest, 16)

    def test_default_choices_are_deterministic(self, fast_spec):
        assert default_choices(fast_spec) == default_choices(fast_spec)
        assert len(default_choices(fast_spec)) == fast_spec.num_voters


class TestSafetyAndLiveness:
    def test_honest_run_is_safe_and_live(self, fast_spec):
        outcome, _ = run_once(fast_spec)
        assert safety_violations(outcome, fast_spec) == []
        assert is_live(outcome, fast_spec)

    def test_liveness_detects_missing_tally(self, fast_spec):
        outcome, _ = run_once(fast_spec)
        outcome.tally = None
        assert not is_live(outcome, fast_spec)


class TestPresetDeterminism:
    """Satellite: every named preset is seed-deterministic, run twice per seed."""

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_preset_runs_twice_identically(self, preset):
        spec = PRESETS[preset]().derive(election_end=200.0)
        verdicts = check_scenario(preset, spec, seeds=(spec.seed, spec.seed + 1))
        assert len(verdicts) == 2
        for verdict in verdicts:
            assert verdict.deterministic, f"{preset} nondeterministic at seed {verdict.seed}"
            assert verdict.safety == []
            assert verdict.live


class TestCrashRecovery:
    """Acceptance: crash + recovery reaches the fault-free run's exact tally."""

    def test_mid_election_crash_recovers_to_same_tally(self, fast_spec):
        reference, reference_hash = run_once(fast_spec)
        plan = FaultPlan(
            events=(
                CrashNode(t=30.0, node="VC-1"),
                RecoverNode(t=120.0, node="VC-1"),
            )
        )
        outcome, _ = run_once(fast_spec.derive(faults=plan))
        assert outcome.tally is not None
        assert tuple(outcome.tally.counts) == tuple(reference.tally.counts)
        assert safety_violations(outcome, fast_spec) == []
        report = outcome.chaos_report
        assert report["crashes"] == {"VC-1": 1}
        assert report["still_crashed"] == []

    def test_post_election_recovery_catches_up_from_bb(self, fast_spec):
        reference, _ = run_once(fast_spec)
        plan = FaultPlan(
            events=(
                CrashNode(t=100.0, node="VC-2"),
                RecoverNode(t=260.0, node="VC-2"),
            )
        )
        outcome, _ = run_once(fast_spec.derive(faults=plan))
        assert tuple(outcome.tally.counts) == tuple(reference.tally.counts)
        assert outcome.chaos_report["caught_up_from_bb"] == ["VC-2"]
        recovered = next(n for n in outcome.vote_collectors if n.node_id == "VC-2")
        assert recovered.caught_up_from_bb
        # The adopted vote set matches what its peers decided in consensus.
        peer = next(n for n in outcome.vote_collectors if n.node_id == "VC-0")
        assert recovered.final_vote_set == peer.final_vote_set

    def test_crash_and_recovery_is_deterministic(self, fast_spec):
        plan = FaultPlan(
            events=(
                CrashNode(t=30.0, node="VC-1"),
                RecoverNode(t=260.0, node="VC-1"),
            )
        )
        spec = fast_spec.derive(faults=plan)
        _, first = run_once(spec)
        _, second = run_once(spec)
        assert first == second


class TestThresholdExactness:
    """Acceptance: liveness fails at EXACTLY fv + 1 crashed VC nodes."""

    def test_fv_crashes_stay_live(self, fast_spec):
        # Nv = 4 tolerates fv = 1 crashed node for the whole election.
        plan = FaultPlan(events=(CrashNode(t=0.0, node="VC-0"),))
        outcome, _ = run_once(fast_spec.derive(faults=plan))
        assert is_live(outcome, fast_spec)
        assert safety_violations(outcome, fast_spec) == []

    def test_fv_plus_one_crashes_break_liveness(self, fast_spec):
        plan = FaultPlan(
            events=(
                CrashNode(t=0.0, node="VC-0"),
                CrashNode(t=0.0, node="VC-1"),
            ),
            expect_failure=True,
        )
        spec = fast_spec.derive(faults=plan)
        outcome, _ = run_once(spec)
        assert not is_live(outcome, spec)
        # Safety holds even above threshold: no receipts were issued, no
        # tally computed -- the system stalls, it does not lie.
        assert safety_violations(outcome, spec) == []
        assert outcome.receipts_obtained == 0
        assert outcome.tally is None


class TestMatrix:
    def test_matrix_has_at_least_twenty_scenarios(self):
        matrix = build_matrix()
        assert len(matrix) >= 20
        names = [name for name, _ in matrix]
        assert len(names) == len(set(names))

    def test_matrix_covers_every_fault_kind(self):
        kinds = set()
        for _, spec in build_matrix():
            for event in spec.faults.events:
                kinds.add(type(event).__name__)
        assert kinds == {"CrashNode", "RecoverNode", "Partition", "LossBurst", "ClockSkew"}

    def test_matrix_includes_above_threshold_scenarios(self):
        expect_failure = [name for name, spec in build_matrix() if spec.faults.expect_failure]
        assert len(expect_failure) >= 2

    def test_representative_scenarios_pass_and_emit_artifacts(self, tmp_path):
        verdicts = run_matrix(only="paper_baseline/crash_recover_post", output_dir=tmp_path)
        assert len(verdicts) == 1
        verdict = verdicts[0]
        assert verdict.passed
        artifact = tmp_path / "paper_baseline__crash_recover_post.recovery.json"
        payload = json.loads(artifact.read_text())
        assert payload["deterministic"] is True
        assert payload["safety_violations"] == []
        assert payload["chaos_report"]["caught_up_from_bb"] == ["VC-1"]
