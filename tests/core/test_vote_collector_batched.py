"""Integration tests for batched (superblock) Vote Set Consensus on VC nodes.

The acceptance property of the batching work: for any ``consensus_batch_size``
the final agreed vote set is identical to the per-ballot baseline, batch
size 1 degenerates to the classic protocol, oversized batches collapse to a
single superblock, and a Byzantine node splitting honest opinions inside a
superblock forces the per-ballot fallback / recovery paths without breaking
agreement.
"""

import pytest

from repro.core.byzantine import UcertWithholdingVoteCollector
from repro.core.coordinator import ElectionCoordinator
from repro.core.ea import ElectionAuthority, vc_node_id
from repro.core.election import ElectionParameters
from repro.core.messages import VoteRequest
from repro.core.vote_collector import VoteCollectorNode
from repro.crypto.utils import RandomSource
from repro.net.adversary import NetworkConditions
from repro.net.channels import ChannelKind, Message
from repro.net.simulator import Network, SimNode


CHOICES = ["option-1", "option-2", "option-1", "option-1", "option-2", "option-1"]


def run_outcome(batch_size, seed=11):
    params = ElectionParameters.small_test_election(
        num_voters=len(CHOICES), num_options=2, election_end=500.0,
        consensus_batch_size=batch_size,
    )
    # Pin the EA randomness so every batch size sees the *same* ballots
    # (serials, vote codes) and the final vote sets are comparable.
    coordinator = ElectionCoordinator(params, seed=seed, rng=RandomSource(99))
    return coordinator, coordinator.run_election(CHOICES)


class TestBatchedElections:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_outcome(batch_size=1)

    @pytest.mark.parametrize("batch_size", [2, 3, 100])
    def test_batched_vote_set_identical_to_per_ballot(self, baseline, batch_size):
        _, base_outcome = baseline
        _, outcome = run_outcome(batch_size=batch_size)
        reference = base_outcome.vote_collectors[0].final_vote_set
        assert reference is not None and len(reference) == len(CHOICES)
        for node in outcome.vote_collectors:
            assert node.final_vote_set == reference
        assert outcome.tally.as_dict() == base_outcome.tally.as_dict()
        assert outcome.audit_report is not None and outcome.audit_report.passed

    def test_batch_size_one_runs_classic_per_ballot_protocol(self, baseline):
        _, outcome = baseline
        stats = outcome.consensus_stats
        assert stats["superblocks"] == 0
        assert stats["per_ballot_instances"] == 4 * len(CHOICES)
        assert stats["envelopes_sent"] == 0

    def test_batch_larger_than_ballot_count_uses_one_superblock(self):
        _, outcome = run_outcome(batch_size=10_000)
        stats = outcome.consensus_stats
        assert stats["superblocks"] == 4  # one block per VC node
        assert stats["superblocks_fast"] == 4
        assert stats["superblocks_fallback"] == 0
        assert stats["per_ballot_instances"] == 0

    def test_batched_mode_sends_fewer_network_messages(self, baseline):
        _, base_outcome = baseline
        _, outcome = run_outcome(batch_size=100)
        assert outcome.network.messages_sent < base_outcome.network.messages_sent

    def test_all_blocks_fast_in_honest_run(self):
        _, outcome = run_outcome(batch_size=3)
        stats = outcome.consensus_stats
        assert stats["superblocks"] == 4 * 2  # two blocks of three ballots per node
        assert stats["superblocks_fast"] == stats["superblocks"]
        assert stats["recover_requests"] == 0


class ProbeVoter(SimNode):
    def on_message(self, message: Message) -> None:
        pass

    def cast(self, target, serial, vote_code):
        self.send(target, VoteRequest(serial, vote_code, self.node_id),
                  channel=ChannelKind.PUBLIC)


def build_byzantine_network(batch_size, reveal_to, seed=23):
    """Four VC nodes where VC-0 withholds a UCERT and reveals it selectively."""
    params = ElectionParameters.small_test_election(
        num_voters=4, num_options=2, election_end=500.0,
        consensus_batch_size=batch_size,
    )
    setup = ElectionAuthority(
        params, rng=RandomSource(31), include_proofs=False, include_trustee_data=False,
    ).setup()
    network = Network(conditions=NetworkConditions(base_latency=0.01, jitter=0.005, seed=seed))
    nodes = []
    for index in range(params.thresholds.num_vc):
        node_id = vc_node_id(index)
        if index == 0:
            node = UcertWithholdingVoteCollector(setup.vc_init[node_id], params)
            node.reveal_to = reveal_to
        else:
            node = VoteCollectorNode(setup.vc_init[node_id], params)
        nodes.append(node)
        network.register(node)
    voter = ProbeVoter("probe-voter")
    network.register(voter)
    return network, nodes, setup


class TestByzantineSuperblock:
    def test_byzantine_split_forces_recovery_inside_superblock(self):
        """VC-0 reveals the withheld UCERT to two honest nodes only.

        The third honest node enters the superblock with opinion "not voted",
        is outvoted by the quorum vector, and must recover the winning vote
        code through RECOVER-REQUEST -- all without leaving the fast path for
        the block or breaking agreement.
        """
        network, nodes, setup = build_byzantine_network(
            batch_size=100, reveal_to=(vc_node_id(1), vc_node_id(2)),
        )
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[0]
        voter = network.nodes["probe-voter"]
        voter.cast(vc_node_id(0), ballot.serial, line.vote_code)  # Byzantine responder
        network.run_until_idle()
        # No honest node saw VOTE_P: the ballot looks unused everywhere.
        for node in nodes[1:]:
            assert node.ballots[ballot.serial].ucert is None
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)

        honest = nodes[1:]
        expected = ((ballot.serial, line.vote_code),)
        for node in honest:
            assert node.final_vote_set == expected
        # VC-3 was outvoted: it decided "voted" without the code and recovered.
        outvoted = nodes[3]
        assert outvoted.vsc_stats.recover_requests == 1
        assert outvoted.consensus[ballot.serial].final_vote_code == line.vote_code
        for node in honest:
            assert node.vsc_stats.superblocks_fallback == 0
            assert node.vsc_stats.superblocks_fast == 1

    def test_byzantine_even_split_forces_superblock_fallback(self):
        """Revealing to a single honest node yields a 2-2 opinion split.

        No opinion vector can reach the Nv - fv quorum, so the superblock
        decides 0 and every honest node falls back to per-ballot consensus --
        and they still agree on the final vote set.
        """
        network, nodes, setup = build_byzantine_network(
            batch_size=100, reveal_to=(vc_node_id(1),),
        )
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[0]
        voter = network.nodes["probe-voter"]
        voter.cast(vc_node_id(0), ballot.serial, line.vote_code)
        network.run_until_idle()
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)

        honest = nodes[1:]
        reference = honest[0].final_vote_set
        assert reference is not None
        for node in honest:
            assert node.final_vote_set == reference
            assert node.vsc_stats.superblocks_fallback == 1
            assert node.vsc_stats.per_ballot_instances == len(setup.ballots)
        # If the disputed ballot survived, its recovered code must be genuine.
        if reference:
            assert reference == ((ballot.serial, line.vote_code),)

    def test_junk_superblock_ids_are_not_buffered(self):
        """Messages for block ids outside our partition must be dropped, not
        accumulated forever (a Byzantine flooding vector)."""
        from repro.consensus.interfaces import BVal

        network, nodes, setup = build_byzantine_network(batch_size=100, reveal_to=())
        honest = nodes[1]
        honest._on_consensus_message("VC-0", BVal("sb|999", 1, 1))
        honest._on_consensus_message("VC-0", BVal("sb|garbage", 1, 0))
        assert honest._sb_buffer == {}
        # A genuine block id is still buffered until the block starts.
        honest._on_consensus_message("VC-0", BVal("sb|0", 1, 1))
        assert list(honest._sb_buffer) == ["sb|0"]
