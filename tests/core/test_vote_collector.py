"""Protocol-level tests for the Vote Collector subsystem.

These tests run only the VC nodes (plus lightweight probe voters) on the
network simulator, so they can inspect the voting protocol and Vote Set
Consensus without the full end-to-end machinery.
"""

import pytest

from repro.core.ea import ElectionAuthority, vc_node_id
from repro.core.election import ElectionParameters
from repro.core.messages import VoteReceipt, VoteRejected, VoteRequest
from repro.core.vote_collector import BallotStatus, VoteCollectorNode, endorsement_message
from repro.crypto.utils import RandomSource
from repro.net.adversary import NetworkConditions
from repro.net.channels import ChannelKind, Message
from repro.net.simulator import Network, SimNode


class ProbeVoter(SimNode):
    """A minimal voter that records receipts/rejections."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.receipts = []
        self.rejections = []

    def on_message(self, message: Message) -> None:
        if isinstance(message.payload, VoteReceipt):
            self.receipts.append(message.payload)
        elif isinstance(message.payload, VoteRejected):
            self.rejections.append(message.payload)

    def cast(self, target, serial, vote_code):
        self.send(target, VoteRequest(serial, vote_code, self.node_id),
                  channel=ChannelKind.PUBLIC)


@pytest.fixture(scope="module")
def vc_setup(group):
    """EA setup (no proofs/trustee data: the VC protocol does not need them)."""
    params = ElectionParameters.small_test_election(
        num_voters=3, num_options=2, election_end=500.0
    )
    authority = ElectionAuthority(
        params, group=group, rng=RandomSource(21),
        include_proofs=False, include_trustee_data=False,
    )
    return params, authority.setup()


def build_vc_network(params, setup, seed=3):
    network = Network(conditions=NetworkConditions(base_latency=0.001, jitter=0.001, seed=seed))
    nodes = []
    for index in range(params.thresholds.num_vc):
        node = VoteCollectorNode(setup.vc_init[vc_node_id(index)], params)
        nodes.append(node)
        network.register(node)
    voter = ProbeVoter("probe-voter")
    network.register(voter)
    return network, nodes, voter


class TestVotingProtocol:
    def test_valid_vote_yields_correct_receipt(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[0]
        voter.cast("VC-0", ballot.serial, line.vote_code)
        network.run_until_idle()
        assert len(voter.receipts) == 1
        assert voter.receipts[0].receipt == line.receipt

    def test_all_honest_nodes_mark_ballot_voted(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[0]
        line = ballot.part_b.lines[1]
        voter.cast("VC-1", ballot.serial, line.vote_code)
        network.run_until_idle()
        for node in nodes:
            record = node.ballots[ballot.serial]
            assert record.status is BallotStatus.VOTED
            assert record.used_vote_code == line.vote_code
            assert record.receipt == line.receipt

    def test_unknown_vote_code_is_rejected(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        voter.cast("VC-0", setup.ballots[0].serial, b"\x00" * 20)
        network.run_until_idle()
        assert voter.receipts == []
        assert len(voter.rejections) == 1
        assert voter.rejections[0].reason == "invalid vote code"

    def test_unknown_serial_is_rejected(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        voter.cast("VC-0", 999_999, setup.ballots[0].part_a.lines[0].vote_code)
        network.run_until_idle()
        assert voter.rejections and voter.rejections[0].reason == "unknown ballot"

    def test_revote_with_same_code_returns_same_receipt(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[1]
        line = ballot.part_a.lines[0]
        voter.cast("VC-0", ballot.serial, line.vote_code)
        network.run_until_idle()
        voter.cast("VC-2", ballot.serial, line.vote_code)
        network.run_until_idle()
        assert len(voter.receipts) == 2
        assert voter.receipts[0].receipt == voter.receipts[1].receipt == line.receipt

    def test_second_vote_code_for_same_ballot_is_rejected(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[2]
        voter.cast("VC-0", ballot.serial, ballot.part_a.lines[0].vote_code)
        network.run_until_idle()
        voter.cast("VC-0", ballot.serial, ballot.part_a.lines[1].vote_code)
        network.run_until_idle()
        assert len(voter.receipts) == 1
        assert any(r.reason == "ballot already used" for r in voter.rejections)

    def test_vote_outside_election_hours_rejected(self, group):
        params = ElectionParameters.small_test_election(
            num_voters=1, num_options=2, election_end=0.5
        )
        setup = ElectionAuthority(
            params, group=group, rng=RandomSource(5),
            include_proofs=False, include_trustee_data=False,
        ).setup()
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[0]
        # Move simulated time past the election end before the vote arrives.
        network.schedule_at(1.0, lambda: voter.cast("VC-0", ballot.serial,
                                                    ballot.part_a.lines[0].vote_code))
        network.run_until_idle()
        assert voter.receipts == []
        assert voter.rejections and voter.rejections[0].reason == "outside voting hours"

    def test_endorsement_message_is_canonical(self):
        assert endorsement_message(1, b"code") == endorsement_message(1, b"code")
        assert endorsement_message(1, b"code") != endorsement_message(2, b"code")

    def test_ucert_requires_quorum_of_valid_signatures(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[0]
        voter.cast("VC-0", ballot.serial, line.vote_code)
        network.run_until_idle()
        record = nodes[0].ballots[ballot.serial]
        assert record.ucert is not None
        assert nodes[0].verify_ucert(record.ucert)
        assert len(record.ucert.endorsements) >= params.thresholds.vc_honest_quorum
        # A certificate trimmed below the quorum no longer verifies.
        from repro.core.messages import UniquenessCertificate

        trimmed = UniquenessCertificate(
            record.ucert.serial, record.ucert.vote_code, record.ucert.endorsements[:1]
        )
        assert not nodes[0].verify_ucert(trimmed)


class TestVoteSetConsensus:
    def test_voted_ballot_survives_into_final_vote_set(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[1]
        voter.cast("VC-3", ballot.serial, line.vote_code)
        network.run_until_idle()
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)
        expected = ((ballot.serial, line.vote_code),)
        for node in nodes:
            assert node.final_vote_set == expected

    def test_unvoted_ballots_are_excluded(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)
        for node in nodes:
            assert node.final_vote_set == ()

    def test_all_nodes_agree_on_final_vote_set(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup, seed=17)
        for index, ballot in enumerate(setup.ballots[:2]):
            line = ballot.part_a.lines[index % 2]
            voter.cast(vc_node_id(index), ballot.serial, line.vote_code)
        network.run_until_idle()
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)
        reference = nodes[0].final_vote_set
        assert reference is not None and len(reference) == 2
        assert all(node.final_vote_set == reference for node in nodes)

    def test_voting_messages_ignored_after_election_end(self, vc_setup):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup)
        for node in nodes:
            node.end_election()
        network.run_until_idle(max_events=2_000_000)
        ballot = setup.ballots[0]
        voter.cast("VC-0", ballot.serial, ballot.part_a.lines[0].vote_code)
        network.run_until_idle(max_events=2_000_000)
        assert voter.receipts == []


class TestCrashSnapshot:
    """Durable-state snapshot/restore through the wire codec."""

    def run_one_vote(self, vc_setup, seed=3):
        params, setup = vc_setup
        network, nodes, voter = build_vc_network(params, setup, seed=seed)
        ballot = setup.ballots[0]
        line = ballot.part_a.lines[0]
        voter.cast("VC-0", ballot.serial, line.vote_code)
        network.run_until_idle()
        return params, setup, network, nodes, ballot, line

    def test_snapshot_restore_round_trips_ballot_state(self, vc_setup):
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        node = nodes[0]
        snapshot = node.snapshot_state()
        before = node.ballots[ballot.serial]
        node.restore_state(snapshot)
        after = node.ballots[ballot.serial]
        assert after.status is BallotStatus.VOTED
        assert after.used_vote_code == line.vote_code
        assert after.receipt == line.receipt
        assert after.ucert == before.ucert
        assert after.receipt_shares == before.receipt_shares
        assert after.location == before.location
        assert node.endorsed[ballot.serial] == line.vote_code

    def test_snapshot_skips_untouched_ballots(self, vc_setup):
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        from repro.net.codec import default_codec

        decoded = default_codec().decode(nodes[0].snapshot_state())
        assert [entry.serial for entry in decoded.entries] == [ballot.serial]

    def test_restore_resets_volatile_consensus_state(self, vc_setup):
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        node = nodes[0]
        snapshot = node.snapshot_state()
        node.end_election()
        assert node.vsc_started
        node.restore_state(snapshot)
        assert not node.vsc_started
        assert node.consensus == {}
        assert node.final_vote_set is None
        assert not node.uploaded

    def test_restore_rejects_foreign_snapshot(self, vc_setup):
        params, setup, network, nodes, *_ = self.run_one_vote(vc_setup)
        snapshot = nodes[0].snapshot_state()
        with pytest.raises(ValueError, match="belongs to"):
            nodes[1].restore_state(snapshot)

    def test_restore_rejects_wrong_frame_type(self, vc_setup):
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        from repro.net.codec import default_codec

        frame = default_codec().encode(VoteRequest(1, b"x", "v"))
        with pytest.raises(TypeError):
            nodes[0].restore_state(frame)

    def test_endorsed_code_survives_restart(self, vc_setup):
        # Safety across restarts: a recovered node must remember which code
        # it endorsed, or it could sign a second code for the same ballot.
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        node = nodes[0]
        node.restore_state(node.snapshot_state())
        other_line = ballot.part_b.lines[0]
        assert node.endorsed.get(ballot.serial) == line.vote_code
        assert node.endorsed.get(ballot.serial) != other_line.vote_code

    def test_adopt_final_vote_set_uploads_once(self, vc_setup):
        params, setup, network, nodes, ballot, line = self.run_one_vote(vc_setup)
        node = nodes[0]
        vote_set = ((ballot.serial, line.vote_code),)
        node.adopt_final_vote_set(vote_set)
        assert node.final_vote_set == vote_set
        assert node.uploaded
        assert node.caught_up_from_bb
        # Idempotent: a second adoption does not overwrite or re-upload.
        node.adopt_final_vote_set(())
        assert node.final_vote_set == vote_set
