"""Tests for the trustee tabulation protocol."""

import pytest

from repro.core.bulletin_board import BulletinBoardNode, MajorityReader
from repro.core.trustee import BbElectionView


@pytest.fixture(scope="module")
def bb_view(small_outcome, small_params):
    return MajorityReader(small_outcome.bb_nodes, small_params).election_view()


@pytest.fixture(scope="module")
def submissions(small_outcome, small_params, bb_view):
    return {
        trustee.trustee_id: trustee.produce_submission(bb_view)
        for trustee in small_outcome.trustees
    }


class TestSubmissions:
    def test_every_trustee_produces_a_signed_submission(self, submissions, small_outcome, group):
        from repro.crypto.signatures import SignatureScheme

        scheme = SignatureScheme(group)
        keys = small_outcome.setup.bb_init.trustee_public_keys
        for trustee_id, submission in submissions.items():
            assert submission.signature is not None
            assert scheme.verify(keys[trustee_id], submission.digest(), submission.signature)

    def test_all_trustees_derive_the_same_challenge(self, submissions):
        challenges = {s.challenge for s in submissions.values()}
        assert len(challenges) == 1

    def test_used_parts_receive_proof_shares(self, submissions, small_outcome):
        locations = small_outcome.bb_nodes[0].cast_row_locations()
        for submission in submissions.values():
            for serial, (part, _) in locations.items():
                assert (serial, part) in submission.proof_shares
                assert (serial, part) not in submission.opening_shares

    def test_unused_parts_receive_opening_shares(self, submissions, small_outcome):
        locations = small_outcome.bb_nodes[0].cast_row_locations()
        for submission in submissions.values():
            for serial, (part, _) in locations.items():
                other = "B" if part == "A" else "A"
                assert (serial, other) in submission.opening_shares

    def test_unvoted_ballots_have_both_parts_opened(self, submissions, small_outcome):
        voted = {serial for serial, _ in small_outcome.bb_nodes[0].accepted_vote_set}
        unvoted = set(small_outcome.setup.bb_init.ballots) - voted
        for submission in submissions.values():
            for serial in unvoted:
                assert (serial, "A") in submission.opening_shares
                assert (serial, "B") in submission.opening_shares

    def test_tally_shares_present_when_votes_were_cast(self, submissions, small_params):
        for submission in submissions.values():
            assert len(submission.tally_value_shares) == small_params.num_options
            assert len(submission.tally_randomness_shares) == small_params.num_options

    def test_digest_changes_with_content(self, submissions):
        submission = next(iter(submissions.values()))
        digest_before = submission.digest()
        original = submission.challenge
        submission.challenge = original + 1
        assert submission.digest() != digest_before
        submission.challenge = original

    def test_digest_detects_shares_moved_across_sequence_boundaries(self, submissions):
        """The flattened share lists are length-prefixed: moving a share from
        the value sequence to the randomness sequence (same flattened order)
        must change the digest, or a signature could be replayed over a
        structurally different submission."""
        submission = next(iter(submissions.values()))
        digest_before = submission.digest()
        values, randomness = submission.tally_value_shares, submission.tally_randomness_shares
        assert values  # fixture casts votes, so tally shares exist
        submission.tally_value_shares = values[:-1]
        submission.tally_randomness_shares = (values[-1],) + randomness
        assert submission.digest() != digest_before
        submission.tally_value_shares = values
        submission.tally_randomness_shares = randomness
        assert submission.digest() == digest_before

    def test_nothing_submitted_twice_is_harmless(self, small_outcome, submissions):
        """Feeding a duplicate submission does not change the published result."""
        bb = small_outcome.bb_nodes[0]
        tally_before = bb.result.tally
        bb.receive_trustee_submission(next(iter(submissions.values())))
        assert bb.result.tally == tally_before


class TestInvalidBallotHandling:
    def test_double_voted_ballot_is_discarded(self, small_outcome, small_params, group):
        """A vote set listing two codes for one ballot makes the trustee discard it."""
        bb = small_outcome.bb_nodes[0]
        serial, code = bb.accepted_vote_set[0]
        decrypted = bb.decrypted_vote_codes
        other_code = next(
            c for c in decrypted[serial]["A"] + decrypted[serial]["B"] if c != code
        )
        tampered_view = BbElectionView(
            vote_set=bb.accepted_vote_set + ((serial, other_code),),
            decrypted_vote_codes=decrypted,
        )
        trustee = small_outcome.trustees[0]
        submission = trustee.produce_submission(tampered_view)
        assert serial in submission.discarded

    def test_unknown_code_is_discarded(self, small_outcome):
        bb = small_outcome.bb_nodes[0]
        serial = next(iter(small_outcome.setup.bb_init.ballots))
        tampered_view = BbElectionView(
            vote_set=((serial, b"\x00" * 20),),
            decrypted_vote_codes=bb.decrypted_vote_codes,
        )
        submission = small_outcome.trustees[0].produce_submission(tampered_view)
        assert serial in submission.discarded
        assert submission.tally_value_shares == ()


class TestThresholdBehaviour:
    def test_result_available_with_exactly_threshold_trustees(
        self, small_outcome, small_params, group, submissions
    ):
        bb = BulletinBoardNode("BB-fresh", small_outcome.setup.bb_init, small_params, group)
        for vc in small_outcome.vote_collectors:
            bb.receive_vote_set(vc.node_id, vc.final_vote_set)
            bb.receive_msk_share(vc.node_id, vc.init.msk_share)
        threshold = small_params.thresholds.trustee_threshold
        for submission in list(submissions.values())[:threshold]:
            bb.receive_trustee_submission(submission)
        assert bb.result is not None
        assert bb.result.tally.as_dict() == small_outcome.expected_tally().as_dict()

    def test_no_result_below_threshold(self, small_outcome, small_params, group, submissions):
        bb = BulletinBoardNode("BB-fresh2", small_outcome.setup.bb_init, small_params, group)
        for vc in small_outcome.vote_collectors:
            bb.receive_vote_set(vc.node_id, vc.final_vote_set)
            bb.receive_msk_share(vc.node_id, vc.init.msk_share)
        threshold = small_params.thresholds.trustee_threshold
        for submission in list(submissions.values())[: threshold - 1]:
            bb.receive_trustee_submission(submission)
        assert bb.result is None

    def test_unsigned_submission_rejected(self, small_outcome, small_params, group, submissions):
        bb = BulletinBoardNode("BB-fresh3", small_outcome.setup.bb_init, small_params, group)
        submission = next(iter(submissions.values()))
        original_signature = submission.signature
        submission.signature = None
        bb.receive_trustee_submission(submission)
        assert bb.trustee_submissions == {}
        submission.signature = original_signature
