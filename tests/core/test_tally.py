"""Tests for tally helpers and the voter-coin challenge."""

import pytest

from repro.core.ballot import PART_A, PART_B
from repro.core.tally import (
    TallyResult,
    combine_tally_commitments,
    expected_tally,
    open_tally,
    part_coin,
    voter_coin_challenge,
)
from repro.crypto.commitments import OptionEncodingScheme


@pytest.fixture(scope="module")
def scheme(group, elgamal_keys):
    return OptionEncodingScheme(3, elgamal_keys.public, group)


class TestTallyResult:
    def test_as_dict(self):
        result = TallyResult((3, 1), ("yes", "no"), 4)
        assert result.as_dict() == {"yes": 3, "no": 1}

    def test_winner(self):
        assert TallyResult((3, 1), ("yes", "no"), 4).winner() == "yes"
        assert TallyResult((1, 5, 2), ("a", "b", "c"), 8).winner() == "b"

    def test_winner_tie_prefers_first(self):
        assert TallyResult((2, 2), ("a", "b"), 4).winner() == "a"

    def test_expected_tally_helper(self):
        result = expected_tally(["a", "b"], ["a", "a", "b"])
        assert result.counts == (2, 1)
        assert result.total_votes == 3


class TestVoterCoins:
    def test_part_coins(self):
        assert part_coin(PART_A) == 0
        assert part_coin(PART_B) == 1

    def test_unknown_part_raises(self):
        with pytest.raises(ValueError):
            part_coin("C")

    def test_challenge_depends_on_cast_parts(self, group):
        a = voter_coin_challenge(group, {1: PART_A, 2: PART_B})
        b = voter_coin_challenge(group, {1: PART_B, 2: PART_B})
        assert a != b

    def test_challenge_is_order_independent(self, group):
        """Ballots are ordered by serial, not by dict insertion order."""
        a = voter_coin_challenge(group, {2: PART_B, 1: PART_A})
        b = voter_coin_challenge(group, {1: PART_A, 2: PART_B})
        assert a == b

    def test_challenge_with_no_votes_is_defined(self, group):
        assert isinstance(voter_coin_challenge(group, {}), int)


class TestHomomorphicOpening:
    def test_open_tally_counts_votes(self, scheme):
        votes = [0, 0, 2, 1, 0]
        commitments, openings = zip(*(scheme.commit_option(v) for v in votes), strict=True)
        combined = combine_tally_commitments(scheme, commitments)
        opening = scheme.combine_openings(list(openings))
        result = open_tally(scheme, combined, opening, ["a", "b", "c"])
        assert result.counts == (3, 1, 1)
        assert result.total_votes == 5

    def test_open_tally_rejects_bad_opening(self, scheme):
        commitments, openings = zip(*(scheme.commit_option(v) for v in (0, 1)), strict=True)
        combined = combine_tally_commitments(scheme, commitments)
        bad_opening = openings[0]
        with pytest.raises(ValueError):
            open_tally(scheme, combined, bad_opening, ["a", "b", "c"])

    def test_open_tally_of_single_vote(self, scheme):
        commitment, opening = scheme.commit_option(2)
        combined = combine_tally_commitments(scheme, [commitment])
        result = open_tally(scheme, combined, opening, ["a", "b", "c"])
        assert result.counts == (0, 0, 1)
