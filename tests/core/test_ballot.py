"""Tests for ballot data structures and per-subsystem views."""

import pytest

from repro.core.ballot import PART_A, PART_B, Ballot, BallotLine, BallotPart


@pytest.fixture()
def ballot():
    def make_part(name, offset):
        lines = tuple(
            BallotLine(
                vote_code=bytes([offset + i]) * 20,
                option=f"option-{i + 1}",
                receipt=bytes([100 + offset + i]) * 8,
            )
            for i in range(3)
        )
        return BallotPart(name, lines)

    return Ballot(1234, make_part(PART_A, 0), make_part(PART_B, 10))


class TestBallotStructure:
    def test_part_lookup(self, ballot):
        assert ballot.part(PART_A).name == PART_A
        assert ballot.part(PART_B).name == PART_B

    def test_unknown_part_raises(self, ballot):
        with pytest.raises(KeyError):
            ballot.part("C")

    def test_line_for_option(self, ballot):
        line = ballot.part_a.line_for_option("option-2")
        assert line.option == "option-2"

    def test_unknown_option_raises(self, ballot):
        with pytest.raises(KeyError):
            ballot.part_a.line_for_option("option-9")

    def test_vote_code_for_option(self, ballot):
        assert ballot.part_b.vote_code_for_option("option-1") == bytes([10]) * 20

    def test_receipt_for_vote_code(self, ballot):
        code = ballot.part_a.vote_code_for_option("option-3")
        assert ballot.part_a.receipt_for_vote_code(code) == bytes([102]) * 8

    def test_receipt_for_unknown_code_is_none(self, ballot):
        assert ballot.part_a.receipt_for_vote_code(b"\xff" * 20) is None

    def test_all_vote_codes(self, ballot):
        codes = ballot.all_vote_codes()
        assert len(codes) == 6
        assert len(set(codes)) == 6

    def test_locate_vote_code(self, ballot):
        code = ballot.part_b.vote_code_for_option("option-2")
        assert ballot.locate_vote_code(code) == (PART_B, 1)

    def test_locate_unknown_code(self, ballot):
        assert ballot.locate_vote_code(b"\x00" * 19 + b"\xff") is None


class TestSetupViews:
    """The per-subsystem views produced by the EA for the shared setup."""

    def test_vc_view_locates_every_vote_code(self, small_setup):
        node = next(iter(small_setup.vc_init.values()))
        for ballot in small_setup.ballots:
            view = node.ballots[ballot.serial]
            for part in ballot.parts:
                for line in part.lines:
                    location = view.find_vote_code(line.vote_code)
                    assert location is not None
                    assert location[0] == part.name

    def test_vc_view_rejects_unknown_code(self, small_setup):
        node = next(iter(small_setup.vc_init.values()))
        view = next(iter(node.ballots.values()))
        assert view.find_vote_code(b"\x00" * 20) is None

    def test_shuffle_maps_view_rows_to_ballot_lines(self, small_setup):
        """Row j of a view corresponds to ballot line permutation[j]."""
        node = next(iter(small_setup.vc_init.values()))
        ballot = small_setup.ballots[0]
        view = node.ballots[ballot.serial]
        for part in ballot.parts:
            permutation = small_setup.permutations[(ballot.serial, part.name)]
            for row_index, source_index in enumerate(permutation):
                line = part.lines[source_index]
                assert view.rows[part.name][row_index].code_commitment.matches(line.vote_code)

    def test_bb_view_has_same_shuffle_as_vc_view(self, small_setup):
        """The encrypted code in BB row j must be the code hashed in VC row j."""
        from repro.crypto.symmetric import VoteCodeCipher

        # Reconstruct msk from the VC shares (test-only shortcut).
        from repro.crypto.shamir import ShamirSecretSharing
        from repro.crypto.utils import int_to_bytes

        thresholds = small_setup.params.thresholds
        shares = [init.msk_share.share for init in small_setup.vc_init.values()]
        msk = int_to_bytes(
            ShamirSecretSharing(thresholds.vc_honest_quorum, thresholds.num_vc).reconstruct(shares),
            16,
        )
        cipher = VoteCodeCipher(msk)
        vc_view = next(iter(small_setup.vc_init.values())).ballots
        for serial, bb_ballot in small_setup.bb_init.ballots.items():
            for part_name, rows in bb_ballot.rows.items():
                for row_index, row in enumerate(rows):
                    code = cipher.decrypt(row.encrypted_vote_code)
                    assert vc_view[serial].rows[part_name][row_index].code_commitment.matches(code)
