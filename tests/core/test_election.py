"""Tests for election parameters and fault thresholds."""

import pytest

from repro.core.election import ElectionParameters, FaultThresholds


class TestFaultThresholds:
    def test_max_faulty_vc(self):
        assert FaultThresholds(4, 3, 3, 2).max_faulty_vc == 1
        assert FaultThresholds(7, 3, 3, 2).max_faulty_vc == 2
        assert FaultThresholds(10, 3, 3, 2).max_faulty_vc == 3

    def test_max_faulty_bb(self):
        assert FaultThresholds(4, 3, 3, 2).max_faulty_bb == 1
        assert FaultThresholds(4, 5, 3, 2).max_faulty_bb == 2

    def test_max_faulty_trustees(self):
        assert FaultThresholds(4, 3, 5, 3).max_faulty_trustees == 2

    def test_vc_honest_quorum(self):
        assert FaultThresholds(4, 3, 3, 2).vc_honest_quorum == 3
        assert FaultThresholds(16, 3, 3, 2).vc_honest_quorum == 11

    def test_bb_majority(self):
        assert FaultThresholds(4, 3, 3, 2).bb_majority == 2
        assert FaultThresholds(4, 7, 3, 2).bb_majority == 4

    def test_validate_rejects_too_few_vc(self):
        with pytest.raises(ValueError):
            FaultThresholds(3, 3, 3, 2).validate()

    def test_validate_rejects_no_bb(self):
        with pytest.raises(ValueError):
            FaultThresholds(4, 0, 3, 2).validate()

    def test_validate_rejects_bad_trustee_threshold(self):
        with pytest.raises(ValueError):
            FaultThresholds(4, 3, 3, 4).validate()
        with pytest.raises(ValueError):
            FaultThresholds(4, 3, 3, 0).validate()


class TestElectionParameters:
    def test_small_test_election_defaults(self):
        params = ElectionParameters.small_test_election()
        assert params.num_options == 3
        assert params.num_voters == 5
        assert params.thresholds.num_vc == 4

    def test_option_index(self):
        params = ElectionParameters.small_test_election(num_options=3)
        assert params.option_index("option-2") == 1

    def test_option_index_rejects_unknown_label(self):
        params = ElectionParameters.small_test_election(num_options=3)
        with pytest.raises(ValueError):
            params.option_index("option-99")

    def test_option_index_covers_every_option(self):
        params = ElectionParameters.small_test_election(num_options=10)
        for index, label in enumerate(params.options):
            assert params.option_index(label) == index

    def test_small_test_election_forwards_batch_security_bits(self):
        params = ElectionParameters.small_test_election(batch_security_bits=96)
        assert params.batch_security_bits == 96

    def test_rejects_non_finite_voting_hours(self):
        thresholds = FaultThresholds(4, 3, 3, 2)
        for start, end in (
            (0.0, float("inf")),
            (float("-inf"), 100.0),
            (0.0, float("nan")),
        ):
            with pytest.raises(ValueError):
                ElectionParameters(
                    options=["a", "b"], num_voters=1, thresholds=thresholds,
                    election_start=start, election_end=end,
                )

    def test_voting_hours(self):
        params = ElectionParameters.small_test_election(election_end=100.0)
        assert params.within_voting_hours(0.0)
        assert params.within_voting_hours(99.9)
        assert not params.within_voting_hours(100.0)
        assert not params.within_voting_hours(-1.0)

    def test_requires_two_options(self):
        thresholds = FaultThresholds(4, 3, 3, 2)
        with pytest.raises(ValueError):
            ElectionParameters(options=["only-one"], num_voters=3, thresholds=thresholds)

    def test_requires_unique_options(self):
        thresholds = FaultThresholds(4, 3, 3, 2)
        with pytest.raises(ValueError):
            ElectionParameters(options=["a", "a"], num_voters=3, thresholds=thresholds)

    def test_requires_voters(self):
        thresholds = FaultThresholds(4, 3, 3, 2)
        with pytest.raises(ValueError):
            ElectionParameters(options=["a", "b"], num_voters=0, thresholds=thresholds)

    def test_requires_positive_duration(self):
        thresholds = FaultThresholds(4, 3, 3, 2)
        with pytest.raises(ValueError):
            ElectionParameters(
                options=["a", "b"], num_voters=1, thresholds=thresholds,
                election_start=10.0, election_end=5.0,
            )

    def test_parameters_are_frozen(self):
        params = ElectionParameters.small_test_election()
        with pytest.raises(AttributeError):
            params.num_voters = 10
