"""Tests for the batched/parallel end-of-election audit and tally pipeline."""

import pytest

from repro.core.auditor import Auditor
from repro.core.coordinator import ElectionCoordinator
from repro.core.election import ElectionParameters
from repro.core.tally import combine_tally_commitments, open_tally, open_tally_parallel
from repro.crypto.commitments import CommitmentOpening, OptionEncodingScheme
from repro.crypto.utils import RandomSource
from repro.perf.parallel import ParallelConfig


@pytest.fixture(scope="module")
def batch_outcome():
    """A fresh honest election whose BB state this module may tamper with."""
    params = ElectionParameters.small_test_election(
        num_voters=4, num_options=2, election_end=200.0
    )
    coordinator = ElectionCoordinator(params, seed=13)
    choices = ["option-1", "option-2", "option-2", "option-1"]
    return coordinator.run_election(choices)


class TestVerifyAll:
    def test_batched_audit_passes_honest_election(self, batch_outcome):
        assert batch_outcome.audit_report is not None
        assert batch_outcome.audit_report.passed

    def test_batched_audit_records_phase_timings(self, batch_outcome):
        timings = batch_outcome.audit_timings
        for phase in ("read_bb", "structural", "openings", "proofs", "tally", "delegations"):
            assert phase in timings
            assert timings[phase] >= 0.0
        assert batch_outcome.audit_report.timings == timings

    def test_batched_audit_includes_tally_opening_check(self, batch_outcome):
        assert batch_outcome.audit_report.checks["h-tally-opening"] is True

    def test_batched_matches_reference_audit_verdicts(self, batch_outcome, group):
        params = batch_outcome.setup.params
        auditor = Auditor(batch_outcome.bb_nodes, params, group)
        reference = auditor.audit()
        batched = auditor.verify_all()
        assert batched.passed == reference.passed
        for name, verdict in reference.checks.items():
            assert batched.checks[name] == verdict

    def test_parallel_workers_produce_identical_report(self, batch_outcome, group):
        params = batch_outcome.setup.params
        auditor = Auditor(batch_outcome.bb_nodes, params, group)
        serial = auditor.verify_all(parallel=ParallelConfig(workers=1, chunk_size=4))
        pooled = auditor.verify_all(
            parallel=ParallelConfig(workers=2, chunk_size=4, serial_threshold=1)
        )
        assert pooled.checks == serial.checks
        assert pooled.passed

    def test_audit_before_result_reports_not_ready(self, batch_outcome, group):
        from repro.core.bulletin_board import BulletinBoardNode

        params = batch_outcome.setup.params
        fresh = [
            BulletinBoardNode(f"bb-{i}", batch_outcome.setup.bb_init, params, group)
            for i in range(params.thresholds.num_bb)
        ]
        report = Auditor(fresh, params, group).verify_all()
        assert not report.passed
        assert report.checks["bb-ready"] is False
        assert "read_bb" in report.timings


class TestTamperDetection:
    """Tampering must be flagged with the exact culprit ballot named."""

    @pytest.fixture()
    def tampered_outcome(self):
        params = ElectionParameters.small_test_election(
            num_voters=4, num_options=2, election_end=200.0
        )
        coordinator = ElectionCoordinator(params, seed=17)
        return coordinator.run_election(["option-1", "option-1", "option-2", "option-2"])

    def test_corrupted_opening_is_located(self, tampered_outcome, group):
        serial = part = None
        for node in tampered_outcome.bb_nodes:
            key = sorted(node.result.openings)[0]
            serial, part = key
            openings = list(node.result.openings[key])
            openings[0] = CommitmentOpening(
                openings[0].values, tuple(r + 1 for r in openings[0].randomness)
            )
            node.result.openings[key] = tuple(openings)
        params = tampered_outcome.setup.params
        report = Auditor(tampered_outcome.bb_nodes, params, group).verify_all()
        assert not report.passed
        assert report.checks["d-valid-openings"] is False
        assert any(
            f"ballot {serial} part {part}" in failure
            for failure in report.failures
            if failure.startswith("d-valid-openings")
        )

    def test_truncated_openings_flagged_incomplete(self, tampered_outcome, group):
        """Publishing fewer openings than ballot rows must not silently skip
        the missing rows (checks run on both audit paths)."""
        serial = part = None
        for node in tampered_outcome.bb_nodes:
            key = sorted(node.result.openings)[0]
            serial, part = key
            node.result.openings[key] = node.result.openings[key][:-1]
        params = tampered_outcome.setup.params
        auditor = Auditor(tampered_outcome.bb_nodes, params, group)
        for report in (auditor.verify_all(), auditor.audit()):
            assert report.checks["d-openings-complete"] is False
            assert any(
                f"ballot {serial} part {part}" in failure
                for failure in report.failures
                if failure.startswith("d-openings-complete")
            )

    def test_corrupted_tally_counts_are_rejected(self, tampered_outcome, group):
        from dataclasses import replace

        for node in tampered_outcome.bb_nodes:
            tally = node.result.tally
            counts = (tally.counts[0] + 1,) + tally.counts[1:]
            node.result.tally = replace(tally, counts=counts, total_votes=tally.total_votes + 1)
        params = tampered_outcome.setup.params
        report = Auditor(tampered_outcome.bb_nodes, params, group).verify_all()
        assert report.checks["h-tally-opening"] is False


class TestTallyHelpers:
    @pytest.fixture(scope="class")
    def tally_fixture(self, group, elgamal_keys):
        scheme = OptionEncodingScheme(3, elgamal_keys.public, group)
        rng = RandomSource(23)
        pairs = [scheme.commit_option(i % 3, rng) for i in range(9)]
        commitments = [commitment for commitment, _ in pairs]
        opening = scheme.combine_openings([opening for _, opening in pairs])
        options = ("red", "green", "blue")
        return scheme, commitments, opening, options

    def test_parallel_combine_matches_serial(self, tally_fixture):
        scheme, commitments, _, _ = tally_fixture
        serial = combine_tally_commitments(scheme, commitments)
        chunked = combine_tally_commitments(
            scheme, commitments, parallel=ParallelConfig(workers=1, chunk_size=2)
        )
        assert serial == chunked

    def test_open_tally_parallel_matches_open_tally(self, tally_fixture):
        scheme, commitments, opening, options = tally_fixture
        combined = combine_tally_commitments(scheme, commitments)
        reference = open_tally(scheme, combined, opening, options)
        batched = open_tally_parallel(scheme, combined, opening, options)
        assert batched == reference
        assert batched.total_votes == 9

    def test_open_tally_parallel_rejects_bad_opening(self, tally_fixture):
        scheme, commitments, opening, options = tally_fixture
        combined = combine_tally_commitments(scheme, commitments)
        forged = CommitmentOpening(opening.values, tuple(r + 1 for r in opening.randomness))
        with pytest.raises(ValueError):
            open_tally_parallel(scheme, combined, forged, options)


class TestElectionParameterKnobs:
    def test_per_item_reference_audit_still_available(self):
        params = ElectionParameters.small_test_election(
            num_voters=3, num_options=2, election_end=200.0, batch_audit=False
        )
        coordinator = ElectionCoordinator(params, seed=19)
        outcome = coordinator.run_election(["option-1", "option-2", "option-1"])
        assert outcome.audit_report.passed
        # The per-item path records no phase timings.
        assert outcome.audit_timings == {}

    def test_invalid_audit_workers_rejected(self):
        with pytest.raises(ValueError):
            ElectionParameters.small_test_election(audit_workers=0)

    def test_invalid_security_bits_rejected(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(
                ElectionParameters.small_test_election(), batch_security_bits=4
            )
