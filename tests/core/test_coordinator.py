"""End-to-end integration tests for complete election runs."""

import pytest

from repro.core.ballot import PART_A, PART_B
from repro.core.coordinator import ElectionCoordinator
from repro.core.election import ElectionParameters


class TestHonestElection:
    """Read-only checks against the shared honest election run."""

    def test_every_voter_gets_valid_receipt(self, small_outcome):
        assert small_outcome.receipts_obtained == len(small_outcome.voters)
        assert small_outcome.all_receipts_valid

    def test_tally_matches_intended_choices(self, small_outcome):
        assert small_outcome.tally is not None
        assert small_outcome.tally.as_dict() == small_outcome.expected_tally().as_dict()

    def test_audit_passes(self, small_outcome):
        assert small_outcome.audit_report is not None
        assert small_outcome.audit_report.passed

    def test_all_bb_nodes_publish_identical_tally(self, small_outcome):
        tallies = {repr(bb.result.tally) for bb in small_outcome.bb_nodes}
        assert len(tallies) == 1

    def test_all_vc_nodes_agree_on_vote_set(self, small_outcome):
        vote_sets = {vc.final_vote_set for vc in small_outcome.vote_collectors}
        assert len(vote_sets) == 1
        assert len(next(iter(vote_sets))) == len(small_outcome.voters)

    def test_cast_vote_codes_published_on_bb(self, small_outcome):
        published = set(small_outcome.bb_nodes[0].accepted_vote_set)
        for voter in small_outcome.voters:
            assert (voter.ballot.serial, voter.vote_code) in published

    def test_network_statistics_recorded(self, small_outcome):
        assert small_outcome.network.messages_sent > 0
        assert small_outcome.network.messages_delivered > 0


class TestControlledPartChoices:
    """A fresh run where every voter's A/B coin is pinned, exercising both
    the all-A and mixed-coin paths of the challenge derivation."""

    @pytest.fixture(scope="class")
    def pinned_outcome(self):
        params = ElectionParameters.small_test_election(
            num_voters=3, num_options=2, election_end=200.0
        )
        coordinator = ElectionCoordinator(params, seed=23)
        return coordinator.run_election(
            ["option-2", "option-2", "option-1"],
            voter_parts=[PART_A, PART_B, PART_A],
        )

    def test_tally_correct(self, pinned_outcome):
        assert pinned_outcome.tally.as_dict() == {"option-1": 1, "option-2": 2}

    def test_audit_passes(self, pinned_outcome):
        assert pinned_outcome.audit_report.passed

    def test_used_parts_match_choices(self, pinned_outcome):
        locations = pinned_outcome.bb_nodes[0].cast_row_locations()
        used_parts = [locations[v.ballot.serial][0] for v in pinned_outcome.voters]
        assert used_parts == [PART_A, PART_B, PART_A]

    def test_unused_parts_are_opened(self, pinned_outcome):
        bb = pinned_outcome.bb_nodes[0]
        for voter in pinned_outcome.voters:
            assert (voter.ballot.serial, voter.unused_part_name) in bb.result.openings


class TestAbstentions:
    """An election where one voter never shows up."""

    @pytest.fixture(scope="class")
    def abstention_outcome(self):
        params = ElectionParameters.small_test_election(
            num_voters=3, num_options=2, election_end=200.0
        )
        coordinator = ElectionCoordinator(params, seed=31)
        coordinator.run_setup()
        coordinator.build_components(["option-1", "option-1", "option-2"])
        # Remove the last voter's start: simply never schedule it.
        abstainer = coordinator.voters.pop()
        coordinator.run_voting_phase()
        tally = coordinator.run_trustee_phase()
        report = coordinator.run_audit()
        from repro.core.coordinator import ElectionOutcome

        return ElectionOutcome(
            setup=coordinator.setup,
            network=coordinator.network,
            vote_collectors=coordinator.vote_collectors,
            bb_nodes=coordinator.bb_nodes,
            trustees=coordinator.trustees,
            voters=coordinator.voters + [abstainer],
            tally=tally,
            audit_report=report,
        )

    def test_only_cast_votes_are_tallied(self, abstention_outcome):
        assert abstention_outcome.tally.as_dict() == {"option-1": 2, "option-2": 0}

    def test_abstainer_ballot_not_in_vote_set(self, abstention_outcome):
        abstainer = abstention_outcome.voters[-1]
        serials = {serial for serial, _ in abstention_outcome.bb_nodes[0].accepted_vote_set}
        assert abstainer.ballot.serial not in serials

    def test_abstainer_ballot_fully_opened(self, abstention_outcome):
        abstainer = abstention_outcome.voters[-1]
        bb = abstention_outcome.bb_nodes[0]
        assert (abstainer.ballot.serial, PART_A) in bb.result.openings
        assert (abstainer.ballot.serial, PART_B) in bb.result.openings

    def test_audit_still_passes(self, abstention_outcome):
        assert abstention_outcome.audit_report.passed


class TestCoordinatorValidation:
    def test_choice_count_must_match_voters(self):
        params = ElectionParameters.small_test_election(num_voters=2, num_options=2)
        coordinator = ElectionCoordinator(params, seed=1)
        coordinator.run_setup()
        with pytest.raises(ValueError):
            coordinator.build_components(["option-1"])

    def test_trustee_phase_without_votes_uploaded_returns_none(self):
        params = ElectionParameters.small_test_election(num_voters=2, num_options=2)
        coordinator = ElectionCoordinator(params, seed=1, include_proofs=False)
        coordinator.run_setup()
        coordinator.build_components(["option-1", "option-2"])
        # Voting phase never ran: the BB has no vote set, trustees cannot work.
        assert coordinator.run_trustee_phase() is None
