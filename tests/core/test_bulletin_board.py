"""Tests for Bulletin Board nodes and the majority reader."""

import pytest

from repro.core.bulletin_board import BulletinBoardNode, MajorityReader
from repro.core.byzantine import WithholdingBulletinBoard


@pytest.fixture()
def fresh_bb(small_setup, small_params, group):
    """A BB node not yet fed by the VC subsystem."""
    return BulletinBoardNode("BB-test", small_setup.bb_init, small_params, group)


class TestVoteSetAcceptance:
    def test_vote_set_needs_fv_plus_one_identical_copies(self, fresh_bb, small_outcome):
        vote_set = small_outcome.vote_collectors[0].final_vote_set
        fresh_bb.receive_vote_set("VC-0", vote_set)
        assert fresh_bb.accepted_vote_set is None
        fresh_bb.receive_vote_set("VC-1", vote_set)
        assert fresh_bb.accepted_vote_set == vote_set

    def test_divergent_submissions_do_not_reach_quorum(self, fresh_bb, small_outcome):
        vote_set = small_outcome.vote_collectors[0].final_vote_set
        fresh_bb.receive_vote_set("VC-0", vote_set)
        fresh_bb.receive_vote_set("VC-1", vote_set[:1])
        assert fresh_bb.accepted_vote_set is None

    def test_unknown_vc_node_ignored(self, fresh_bb, small_outcome):
        vote_set = small_outcome.vote_collectors[0].final_vote_set
        fresh_bb.receive_vote_set("VC-999", vote_set)
        fresh_bb.receive_vote_set("intruder", vote_set)
        assert fresh_bb.accepted_vote_set is None

    def test_first_quorum_wins_and_sticks(self, fresh_bb, small_outcome):
        vote_set = small_outcome.vote_collectors[0].final_vote_set
        for node in ("VC-0", "VC-1"):
            fresh_bb.receive_vote_set(node, vote_set)
        fresh_bb.receive_vote_set("VC-2", vote_set[:1])
        fresh_bb.receive_vote_set("VC-3", vote_set[:1])
        assert fresh_bb.accepted_vote_set == vote_set


class TestMskReconstruction:
    def test_msk_needs_quorum_of_shares(self, fresh_bb, small_setup, small_params):
        inits = list(small_setup.vc_init.values())
        quorum = small_params.thresholds.vc_honest_quorum
        for init in inits[: quorum - 1]:
            fresh_bb.receive_msk_share(init.node_id, init.msk_share)
        assert fresh_bb.msk is None
        fresh_bb.receive_msk_share(inits[quorum - 1].node_id, inits[quorum - 1].msk_share)
        assert fresh_bb.msk is not None
        assert small_setup.bb_init.key_commitment.matches(fresh_bb.msk)

    def test_decrypted_codes_published_after_reconstruction(self, fresh_bb, small_setup):
        for init in small_setup.vc_init.values():
            fresh_bb.receive_msk_share(init.node_id, init.msk_share)
        ballot = small_setup.ballots[0]
        decrypted = fresh_bb.decrypted_vote_codes[ballot.serial]
        published = {code for codes in decrypted.values() for code in codes}
        assert published == set(ballot.all_vote_codes())

    def test_corrupted_share_rejected_by_signature_check(self, fresh_bb, small_setup):
        from repro.crypto.shamir import Share, SignedShare

        init = next(iter(small_setup.vc_init.values()))
        genuine = init.msk_share
        corrupted = SignedShare(
            Share(genuine.share.index, genuine.share.value + 1),
            genuine.context,
            genuine.signature,
        )
        fresh_bb.receive_msk_share(init.node_id, corrupted)
        assert fresh_bb.msk_shares == {}


class TestPublishedResult:
    def test_result_published_after_trustee_threshold(self, small_outcome):
        for bb in small_outcome.bb_nodes:
            assert bb.result is not None
            assert bb.result.tally is not None

    def test_published_tally_matches_expected(self, small_outcome):
        expected = small_outcome.expected_tally().as_dict()
        for bb in small_outcome.bb_nodes:
            assert bb.result.tally.as_dict() == expected

    def test_cast_row_locations_match_vote_set(self, small_outcome):
        bb = small_outcome.bb_nodes[0]
        locations = bb.cast_row_locations()
        assert set(locations) == {serial for serial, _ in bb.accepted_vote_set}

    def test_published_proofs_verify(self, small_outcome):
        assert small_outcome.bb_nodes[0].verify_proofs()

    def test_used_parts_get_proofs_and_unused_parts_get_openings(self, small_outcome):
        bb = small_outcome.bb_nodes[0]
        locations = bb.cast_row_locations()
        for serial, (part, _) in locations.items():
            assert (serial, part) in bb.result.proof_responses
            other = "B" if part == "A" else "A"
            assert (serial, other) in bb.result.openings
            assert (serial, part) not in bb.result.openings

    def test_snapshot_contains_tally(self, small_outcome):
        snapshot = small_outcome.bb_nodes[0].snapshot()
        assert snapshot["tally"] is not None
        assert snapshot["msk_reconstructed"] is True


class TestMajorityReader:
    def test_reader_returns_majority_value(self, small_outcome, small_params):
        reader = MajorityReader(small_outcome.bb_nodes, small_params)
        tally = reader.tally()
        assert tally.as_dict() == small_outcome.expected_tally().as_dict()

    def test_reader_tolerates_withholding_minority(self, small_outcome, small_params, group):
        lying = WithholdingBulletinBoard(
            "BB-evil", small_outcome.setup.bb_init, small_params, group
        )
        nodes = list(small_outcome.bb_nodes[:2]) + [lying]
        reader = MajorityReader(nodes, small_params)
        view = reader.read(lambda node: node.snapshot()["vote_set"])
        assert view == small_outcome.bb_nodes[0].accepted_vote_set

    def test_reader_raises_without_majority(self, small_outcome, small_params, group):
        lying = [
            WithholdingBulletinBoard(f"BB-evil-{i}", small_outcome.setup.bb_init,
                                     small_params, group)
            for i in range(2)
        ]
        reader = MajorityReader([small_outcome.bb_nodes[0]] + lying, small_params)
        # The two withholding nodes have no result at all; only one (honest)
        # answer exists, which is below the fb + 1 = 2 majority requirement.
        with pytest.raises(ValueError):
            reader.read(lambda node: node.result.tally)

    def test_election_view_exposes_vote_set_and_codes(self, small_outcome, small_params):
        reader = MajorityReader(small_outcome.bb_nodes, small_params)
        view = reader.election_view()
        assert view.vote_set == small_outcome.bb_nodes[0].accepted_vote_set
        assert set(view.decrypted_vote_codes) == set(small_outcome.setup.bb_init.ballots)
