"""Tests for the Election Authority setup."""

import pytest

from repro.core.ballot import PART_A, PART_B
from repro.core.ea import ElectionAuthority, bb_node_id, trustee_id, vc_node_id, voter_id
from repro.core.election import ElectionParameters
from repro.crypto.commitments import CommitmentOpening, OptionEncodingScheme
from repro.crypto.pedersen_vss import PedersenVSS
from repro.crypto.shamir import ShamirSecretSharing, SigningDealer
from repro.crypto.signatures import SignatureScheme
from repro.crypto.utils import RandomSource
from repro.crypto.zkp import BallotCorrectnessVerifier, fiat_shamir_challenge


class TestIdentifiers:
    def test_node_id_helpers(self):
        assert vc_node_id(0) == "VC-0"
        assert bb_node_id(2) == "BB-2"
        assert trustee_id(1) == "T-1"
        assert voter_id(3) == "voter-3"


class TestSetupStructure:
    def test_one_ballot_per_voter(self, small_setup, small_params):
        assert len(small_setup.ballots) == small_params.num_voters

    def test_serial_numbers_are_unique(self, small_setup):
        serials = [ballot.serial for ballot in small_setup.ballots]
        assert len(serials) == len(set(serials))

    def test_serials_fit_in_64_bits(self, small_setup):
        assert all(0 <= ballot.serial < 2 ** 64 for ballot in small_setup.ballots)

    def test_vote_codes_unique_within_ballot(self, small_setup):
        for ballot in small_setup.ballots:
            codes = ballot.all_vote_codes()
            assert len(codes) == len(set(codes))

    def test_each_part_covers_every_option(self, small_setup, small_params):
        for ballot in small_setup.ballots:
            for part in ballot.parts:
                assert [line.option for line in part.lines] == list(small_params.options)

    def test_every_vc_node_has_init_data(self, small_setup, small_params):
        assert set(small_setup.vc_init) == {
            vc_node_id(i) for i in range(small_params.thresholds.num_vc)
        }

    def test_every_trustee_has_init_data(self, small_setup, small_params):
        assert set(small_setup.trustee_init) == {
            trustee_id(i) for i in range(small_params.thresholds.num_trustees)
        }

    def test_bb_init_covers_every_ballot(self, small_setup):
        assert set(small_setup.bb_init.ballots) == {b.serial for b in small_setup.ballots}

    def test_ballot_lookup_by_serial(self, small_setup):
        ballot = small_setup.ballots[0]
        assert small_setup.ballot_by_serial(ballot.serial) is ballot
        with pytest.raises(KeyError):
            small_setup.ballot_by_serial(-1)


class TestSecretSharingConsistency:
    def test_msk_shares_reconstruct_key_matching_bb_commitment(self, small_setup):
        thresholds = small_setup.params.thresholds
        sss = ShamirSecretSharing(thresholds.vc_honest_quorum, thresholds.num_vc)
        shares = [init.msk_share.share for init in small_setup.vc_init.values()]
        from repro.crypto.utils import int_to_bytes

        msk = int_to_bytes(sss.reconstruct(shares), 16)
        assert small_setup.bb_init.key_commitment.matches(msk)

    def test_msk_shares_carry_valid_dealer_signatures(self, small_setup):
        scheme = SignatureScheme()
        for init in small_setup.vc_init.values():
            assert SigningDealer.verify_share(
                scheme, small_setup.bb_init.dealer_public_key, init.msk_share
            )

    def test_receipt_shares_reconstruct_printed_receipt(self, small_setup):
        thresholds = small_setup.params.thresholds
        sss = ShamirSecretSharing(thresholds.vc_honest_quorum, thresholds.num_vc)
        ballot = small_setup.ballots[0]
        permutation = small_setup.permutations[(ballot.serial, PART_A)]
        row_index = 0
        line = ballot.part_a.lines[permutation[row_index]]
        shares = [
            init.ballots[ballot.serial].rows[PART_A][row_index].receipt_share.share
            for init in small_setup.vc_init.values()
        ]
        from repro.crypto.utils import int_to_bytes

        assert int_to_bytes(sss.reconstruct(shares), 8) == line.receipt

    def test_trustee_opening_shares_reconstruct_unit_vector(self, small_setup, group):
        thresholds = small_setup.params.thresholds
        pedersen = PedersenVSS(thresholds.trustee_threshold, thresholds.num_trustees, group)
        scheme = OptionEncodingScheme(
            small_setup.params.num_options, small_setup.commitment_public_key, group
        )
        ballot = small_setup.ballots[0]
        permutation = small_setup.permutations[(ballot.serial, PART_B)]
        row_index = 1
        option_index = small_setup.params.option_index(
            ballot.part_b.lines[permutation[row_index]].option
        )
        trustee_views = [
            init.ballots[ballot.serial].rows[PART_B][row_index]
            for init in small_setup.trustee_init.values()
        ]
        values = tuple(
            pedersen.reconstruct([view.opening_value_shares[coord] for view in trustee_views])
            for coord in range(small_setup.params.num_options)
        )
        randomness = tuple(
            pedersen.reconstruct([view.opening_randomness_shares[coord] for view in trustee_views])
            for coord in range(small_setup.params.num_options)
        )
        opening = CommitmentOpening(values, randomness)
        assert scheme.verify_opening(trustee_views[0].commitment, opening)
        assert list(values) == scheme.unit_vector(option_index)

    def test_zk_first_moves_verify_with_reconstructed_state(self, small_setup, group):
        """Reconstructing the shared ZK coefficients yields a valid proof."""
        thresholds = small_setup.params.thresholds
        zk_sss = ShamirSecretSharing(
            thresholds.trustee_threshold, thresholds.num_trustees, prime=group.order
        )
        verifier = BallotCorrectnessVerifier(small_setup.commitment_public_key, group)
        serial = small_setup.ballots[0].serial
        bb_row = small_setup.bb_init.ballots[serial].rows[PART_A][0]
        trustee_rows = [
            init.ballots[serial].rows[PART_A][0] for init in small_setup.trustee_init.values()
        ]
        challenge = fiat_shamir_challenge(group, bb_row.commitment, bb_row.proof_announcement)
        # Reconstruct each affine coefficient, evaluate at the challenge and
        # assemble the response exactly like the BB does.
        components = {}
        grouped = {}
        for name in trustee_rows[0].zk_state_shares:
            component, kind = name.rsplit(":", 1)
            grouped.setdefault(component, {})[kind] = [
                row.zk_state_shares[name] for row in trustee_rows
            ]
        for component, kinds in grouped.items():
            const = zk_sss.reconstruct(kinds["const"])
            lin = zk_sss.reconstruct(kinds["lin"])
            components[component] = (const + challenge * lin) % group.order
        from repro.core.bulletin_board import BulletinBoardNode

        response = BulletinBoardNode._assemble_proof_response(None, components)
        assert verifier.verify(bb_row.commitment, bb_row.proof_announcement, challenge, response)


class TestSetupOptions:
    def test_setup_without_proofs_is_lighter(self, group):
        params = ElectionParameters.small_test_election(num_voters=2, num_options=2)
        setup = ElectionAuthority(
            params, group=group, rng=RandomSource(3), include_proofs=False
        ).setup()
        serial = setup.ballots[0].serial
        assert setup.bb_init.ballots[serial].rows[PART_A][0].proof_announcement is None

    def test_setup_is_deterministic_with_seeded_rng(self, group):
        params = ElectionParameters.small_test_election(num_voters=2, num_options=2)
        first = ElectionAuthority(
            params, group=group, rng=RandomSource(9), include_proofs=False,
            include_trustee_data=False,
        ).setup()
        second = ElectionAuthority(
            params, group=group, rng=RandomSource(9), include_proofs=False,
            include_trustee_data=False,
        ).setup()
        assert [b.serial for b in first.ballots] == [b.serial for b in second.ballots]
        assert first.ballots[0].part_a.lines == second.ballots[0].part_a.lines
