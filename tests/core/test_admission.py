"""Unit tests for the voting-phase admission pipeline primitives."""

import pytest

from repro.core.admission import (
    ADMISSION_POLICIES,
    AdmissionQueue,
    AdmissionStats,
    EndorsementBatcher,
    batch_verify_signers,
    node_batch_seed,
    parse_retry_hint,
    shed_reason,
    validate_admission_flags,
)
from repro.core.messages import Endorsement
from repro.core.vote_collector import endorsement_message
from repro.crypto.batch_verify import BatchVerifier
from repro.crypto.signatures import SignatureScheme
from repro.crypto.utils import RandomSource


class FakeNode:
    """A SimNode stand-in whose timers fire only when the test says so."""

    def __init__(self):
        self.timers = []

    def set_timer(self, delay, callback, description=""):
        self.timers.append((delay, callback, description))

    def fire_next(self):
        _delay, callback, _description = self.timers.pop(0)
        callback()

    def fire_all(self):
        while self.timers:
            self.fire_next()


class TestRetryHint:
    def test_round_trips_through_the_reason_string(self):
        assert parse_retry_hint(shed_reason(0.25)) == pytest.approx(0.25, abs=1e-3)

    def test_protocol_rejections_carry_no_hint(self):
        assert parse_retry_hint("invalid vote code") is None
        assert parse_retry_hint("ballot already used") is None

    def test_seed_is_deterministic_and_per_node(self):
        assert node_batch_seed("VC-0") == node_batch_seed("VC-0")
        assert node_batch_seed("VC-0") != node_batch_seed("VC-1")

    def test_flag_validation(self):
        validate_admission_flags(None, "shed", 0.0, 1, 0.05)
        with pytest.raises(ValueError):
            validate_admission_flags(0, "shed", 0.0, 1, 0.05)
        with pytest.raises(ValueError):
            validate_admission_flags(None, "drop", 0.0, 1, 0.05)
        with pytest.raises(ValueError):
            validate_admission_flags(None, "shed", -1.0, 1, 0.05)
        with pytest.raises(ValueError):
            validate_admission_flags(None, "shed", 0.0, 0, 0.05)
        with pytest.raises(ValueError):
            validate_admission_flags(None, "shed", 0.0, 1, 0.0)
        assert set(ADMISSION_POLICIES) == {"shed", "block"}


def make_queue(policy="shed", depth=2, service_s=0.1):
    node = FakeNode()
    stats = AdmissionStats()
    admitted, shed = [], []
    queue = AdmissionQueue(
        node=node,
        stats=stats,
        on_admit=lambda sender, request: admitted.append((sender, request)),
        on_shed=lambda sender, request, hint: shed.append((sender, request, hint)),
        depth=depth,
        policy=policy,
        service_s=service_s,
    )
    return node, stats, admitted, shed, queue


class TestAdmissionQueue:
    def test_zero_service_admits_inline(self):
        node, stats, admitted, _shed, queue = make_queue(service_s=0.0)
        for i in range(5):
            assert queue.offer(f"V-{i}", i)
        assert [request for _sender, request in admitted] == list(range(5))
        assert stats.requests == stats.admitted == 5
        assert not node.timers  # nothing deferred

    def test_positive_service_defers_through_timers(self):
        node, stats, admitted, _shed, queue = make_queue(depth=None)
        queue.offer("V-0", 0)
        queue.offer("V-1", 1)
        assert admitted == []  # nothing admitted until the drain timer fires
        node.fire_all()
        assert [request for _sender, request in admitted] == [0, 1]
        assert stats.admitted == 2
        assert stats.peak_depth == 2

    def test_shed_policy_bounds_depth_and_hints(self):
        node, stats, admitted, shed, queue = make_queue(depth=2, service_s=0.1)
        assert queue.offer("V-0", 0)
        assert queue.offer("V-1", 1)
        assert not queue.offer("V-2", 2)  # over depth: shed
        assert stats.shed == 1
        assert shed[0][2] == pytest.approx(0.2)  # depth * service_s
        node.fire_all()
        assert len(admitted) == 2
        assert stats.peak_depth == 2

    def test_block_policy_queues_past_depth(self):
        node, stats, admitted, shed, queue = make_queue(policy="block", depth=2)
        for i in range(4):
            assert queue.offer(f"V-{i}", i)
        assert stats.blocked_over_depth == 2
        assert shed == []
        node.fire_all()
        assert len(admitted) == 4
        assert stats.peak_depth == 4

    def test_reset_drops_backlog(self):
        node, stats, admitted, _shed, queue = make_queue(depth=None)
        queue.offer("V-0", 0)
        queue.reset()
        node.fire_all()
        assert admitted == []
        assert len(queue) == 0


@pytest.fixture(scope="module")
def signed_endorsements(group):
    """Endorsements from four distinct signers, plus their public keys."""
    scheme = SignatureScheme(group)
    rng = RandomSource(33)
    keys = {f"VC-{i}": scheme.keygen(rng) for i in range(4)}
    publics = {node: pair.public for node, pair in keys.items()}
    endorsements = [
        Endorsement(7, b"\x01" * 20, node,
                    scheme.sign(pair, endorsement_message(7, b"\x01" * 20), rng))
        for node, pair in keys.items()
    ]
    return publics, endorsements


def make_batcher(group, publics, batch_size=3, window_s=0.05, wanted=None):
    node = FakeNode()
    stats = AdmissionStats()
    processed = []
    batcher = EndorsementBatcher(
        node=node,
        verifier=BatchVerifier(group, rng=RandomSource(5)),
        stats=stats,
        public_key_of=publics.get,
        message_of=lambda e: endorsement_message(e.serial, e.vote_code),
        process=processed.append,
        wanted=wanted or (lambda e: True),
        batch_size=batch_size,
        window_s=window_s,
    )
    return node, stats, processed, batcher


class TestEndorsementBatcher:
    def test_flushes_at_batch_size(self, group, signed_endorsements):
        publics, endorsements = signed_endorsements
        node, stats, processed, batcher = make_batcher(group, publics, batch_size=3)
        for endorsement in endorsements[:3]:
            batcher.add(endorsement)
        assert processed == list(endorsements[:3])  # arrival order preserved
        assert stats.endorse_batches == 1
        assert stats.endorsements_batch_verified == 3
        # One aggregate equation for a clean batch, versus 3 serial checks.
        assert stats.endorse_batch_equations == 1

    def test_window_timer_flushes_partial_batch(self, group, signed_endorsements):
        publics, endorsements = signed_endorsements
        node, stats, processed, batcher = make_batcher(group, publics, batch_size=10)
        batcher.add(endorsements[0])
        assert processed == []
        assert [d for d, _c, _desc in node.timers] == [0.05]
        node.fire_all()
        assert processed == [endorsements[0]]

    def test_forged_signature_is_bisected_out(self, group, signed_endorsements):
        from dataclasses import replace

        publics, endorsements = signed_endorsements
        good = endorsements[0]
        # Tampered response: passes the Fiat-Shamir pre-screen (the challenge
        # still hashes correctly) but fails the group equation, so the batch
        # must bisect to locate it.
        bad_signature = replace(endorsements[1].signature,
                                response=(endorsements[1].signature.response + 1) % group.order)
        forged = replace(endorsements[1], signature=bad_signature)
        node, stats, processed, batcher = make_batcher(group, publics, batch_size=3)
        for endorsement in (good, forged, endorsements[2]):
            batcher.add(endorsement)
        assert processed == [good, endorsements[2]]
        assert stats.endorse_batch_equations > 1  # bisection ran extra equations

    def test_stale_items_are_refiltered_at_flush(self, group, signed_endorsements):
        publics, endorsements = signed_endorsements
        live = {"wanted": True}
        node, _stats, processed, batcher = make_batcher(
            group, publics, batch_size=10, wanted=lambda e: live["wanted"])
        batcher.add(endorsements[0])
        live["wanted"] = False  # quorum reached while the batch waited
        node.fire_all()
        assert processed == []

    def test_unknown_signer_is_skipped(self, group, signed_endorsements):
        publics, endorsements = signed_endorsements
        stranger = Endorsement(7, b"\x01" * 20, "VC-99", endorsements[0].signature)
        node, _stats, processed, batcher = make_batcher(group, publics, batch_size=2)
        batcher.add(endorsements[0])
        batcher.add(stranger)
        assert processed == [endorsements[0]]

    def test_batch_verify_signers_matches_serial(self, group, signed_endorsements):
        publics, endorsements = signed_endorsements
        scheme = SignatureScheme(group)
        forged = Endorsement(7, b"\x01" * 20, "VC-3", endorsements[0].signature)
        mixed = endorsements[:3] + [forged]
        signers = batch_verify_signers(
            BatchVerifier(group, rng=RandomSource(9)),
            mixed,
            publics.get,
            lambda e: endorsement_message(e.serial, e.vote_code),
        )
        serial = {
            e.signer for e in mixed
            if scheme.verify(publics[e.signer],
                             endorsement_message(e.serial, e.vote_code), e.signature)
        }
        assert signers == serial == {"VC-0", "VC-1", "VC-2"}
