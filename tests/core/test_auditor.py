"""Tests for auditors and delegated verification."""

import pytest

from repro.core.auditor import Auditor, AuditReport, fraud_detection_probability
from repro.core.voter import VoterAuditInfo


@pytest.fixture(scope="module")
def auditor(small_outcome, small_params, group):
    return Auditor(small_outcome.bb_nodes, small_params, group)


class TestAuditReport:
    def test_empty_report_passes(self):
        assert AuditReport().passed

    def test_single_failure_fails_report(self):
        report = AuditReport()
        report.record("check", True)
        report.record("check", False, "boom")
        assert not report.passed
        assert any("boom" in failure for failure in report.failures)

    def test_record_accumulates_conjunctively(self):
        report = AuditReport()
        report.record("check", False)
        report.record("check", True)
        assert report.checks["check"] is False


class TestFullAudit:
    def test_honest_election_passes_all_checks(self, auditor):
        report = auditor.audit()
        assert report.passed
        for name in (
            "a-unique-vote-codes",
            "b-single-submission",
            "c-single-part-used",
            "d-valid-openings",
            "d-openings-are-unit-vectors",
            "e-proofs-valid",
        ):
            assert report.checks.get(name, True), name

    def test_audit_with_delegations_passes(self, auditor, small_outcome):
        delegations = [voter.audit_info() for voter in small_outcome.voters]
        report = auditor.audit(delegations)
        assert report.passed
        assert report.checks["f-cast-code-published"]
        assert report.checks["g-unused-part-consistent"]

    def test_delegation_with_wrong_cast_code_fails(self, auditor, small_outcome):
        voter = small_outcome.voters[0]
        info = voter.audit_info()
        forged = VoterAuditInfo(
            serial=info.serial,
            cast_vote_code=b"\x01" * 20,
            unused_part_name=info.unused_part_name,
            unused_part_lines=info.unused_part_lines,
        )
        report = auditor.verify_delegation(forged)
        assert not report.checks["f-cast-code-published"]

    def test_delegation_with_tampered_unused_part_fails(self, auditor, small_outcome):
        """A malicious EA that swapped options on the printed ballot is caught."""
        voter = small_outcome.voters[0]
        info = voter.audit_info()
        lines = list(info.unused_part_lines)
        # Swap the option labels of the first two lines: the printed ballot no
        # longer matches the opened BB data.
        from repro.core.ballot import BallotLine

        swapped = [
            BallotLine(lines[0].vote_code, lines[1].option, lines[0].receipt),
            BallotLine(lines[1].vote_code, lines[0].option, lines[1].receipt),
        ] + lines[2:]
        forged = VoterAuditInfo(
            serial=info.serial,
            cast_vote_code=info.cast_vote_code,
            unused_part_name=info.unused_part_name,
            unused_part_lines=tuple(swapped),
        )
        report = auditor.verify_delegation(forged)
        assert not report.checks["g-unused-part-consistent"]

    def test_audit_before_result_reports_not_ready(self, small_setup, small_params, group):
        from repro.core.bulletin_board import BulletinBoardNode

        fresh_nodes = [
            BulletinBoardNode(f"BB-f{i}", small_setup.bb_init, small_params, group)
            for i in range(3)
        ]
        report = Auditor(fresh_nodes, small_params, group).audit()
        assert not report.passed
        assert report.checks["bb-ready"] is False


class TestFraudDetection:
    def test_probability_increases_with_auditors(self):
        assert fraud_detection_probability(0) == 0.0
        assert fraud_detection_probability(1) == 0.5
        assert fraud_detection_probability(10) == pytest.approx(1 - 2 ** -10)

    def test_paper_example_ten_auditors(self):
        """The paper: 10 auditors leave only ~0.00097 undetected probability."""
        assert 1 - fraud_detection_probability(10) == pytest.approx(0.0009765625)

    def test_negative_auditors_rejected(self):
        with pytest.raises(ValueError):
            fraud_detection_probability(-1)
