"""Tests for the voter client."""


from repro.core.ballot import PART_A, PART_B
from repro.core.voter import VoterClient


class TestVoterSetup:
    def test_voter_picks_vote_code_for_choice(self, small_outcome):
        voter = small_outcome.voters[0]
        line = voter.part.line_for_option(voter.choice)
        assert voter.vote_code == line.vote_code
        assert voter.expected_receipt == line.receipt

    def test_explicit_part_choice_is_respected(self, small_setup):
        ballot = small_setup.ballots[0]
        voter = VoterClient("v", ballot, ["VC-0"], "option-1", part_choice=PART_B)
        assert voter.part_name == PART_B
        assert voter.unused_part_name == PART_A

    def test_coin_reflects_part_choice(self, small_setup):
        ballot = small_setup.ballots[0]
        assert VoterClient("v", ballot, ["VC-0"], "option-1", part_choice=PART_A).coin == 0
        assert VoterClient("v", ballot, ["VC-0"], "option-1", part_choice=PART_B).coin == 1

    def test_random_part_choice_is_seeded(self, small_setup):
        ballot = small_setup.ballots[0]
        first = VoterClient("v", ballot, ["VC-0"], "option-1", seed=3)
        second = VoterClient("v", ballot, ["VC-0"], "option-1", seed=3)
        assert first.part_name == second.part_name


class TestVotingOutcome:
    def test_every_voter_received_valid_receipt(self, small_outcome):
        for voter in small_outcome.voters:
            assert voter.receipt is not None
            assert voter.receipt_valid
            assert voter.completed_at is not None

    def test_receipt_matches_printed_receipt(self, small_outcome):
        for voter in small_outcome.voters:
            assert voter.receipt == voter.expected_receipt

    def test_attempts_recorded(self, small_outcome):
        for voter in small_outcome.voters:
            assert voter.attempts >= 1

    def test_audit_info_exposes_unused_part_only(self, small_outcome):
        voter = small_outcome.voters[0]
        info = voter.audit_info()
        assert info.serial == voter.ballot.serial
        assert info.cast_vote_code == voter.vote_code
        assert info.unused_part_name == voter.unused_part_name
        unused_codes = {line.vote_code for line in info.unused_part_lines}
        assert voter.vote_code not in unused_codes

    def test_voter_verifies_on_bb(self, small_outcome):
        voter = small_outcome.voters[0]
        bb = small_outcome.bb_nodes[0]
        vote_set = bb.accepted_vote_set
        # Rebuild the option labels of the opened unused part, in the voter's
        # canonical ballot order.
        key = (voter.ballot.serial, voter.unused_part_name)
        openings = bb.result.openings[key]
        codes = bb.decrypted_vote_codes[voter.ballot.serial][voter.unused_part_name]
        options = small_outcome.setup.params.options
        code_to_option = {
            code: options[list(opening.values).index(1)]
            for code, opening in zip(codes, openings, strict=True)
        }
        opened_options = [
            code_to_option[line.vote_code]
            for line in voter.ballot.part(voter.unused_part_name).lines
        ]
        assert voter.verify_on_bb(vote_set, opened_options)

    def test_verify_on_bb_detects_missing_vote(self, small_outcome):
        voter = small_outcome.voters[0]
        opened = [line.option for line in voter.ballot.part(voter.unused_part_name).lines]
        assert not voter.verify_on_bb([], opened)

    def test_verify_on_bb_detects_swapped_options(self, small_outcome):
        voter = small_outcome.voters[0]
        bb = small_outcome.bb_nodes[0]
        opened = [line.option for line in voter.ballot.part(voter.unused_part_name).lines]
        swapped = list(reversed(opened))
        assert not voter.verify_on_bb(bb.accepted_vote_set, swapped)


class TestPatience:
    def test_patient_voter_blacklists_unresponsive_node(self, small_setup, small_params):
        """[d]-patience: a voter whose first target never answers resubmits elsewhere."""
        import random

        from repro.net.adversary import Adversary, NetworkConditions
        from repro.net.simulator import Network
        from repro.core.vote_collector import VoteCollectorNode
        from repro.core.ea import vc_node_id

        adversary = Adversary()
        network = Network(conditions=NetworkConditions(base_latency=0.001, seed=2),
                          adversary=adversary)
        nodes = []
        for index in range(small_params.thresholds.num_vc):
            node = VoteCollectorNode(small_setup.vc_init[vc_node_id(index)], small_params)
            nodes.append(node)
            network.register(node)
        ballot = small_setup.ballots[0]
        vc_ids = [n.node_id for n in nodes]
        seed = 1
        voter = VoterClient(
            "patient-voter", ballot, vc_ids, "option-1",
            patience=5.0, part_choice=PART_A, seed=seed,
        )
        network.register(voter)
        # The voter's first pick is deterministic given the seed (the part was
        # fixed explicitly, so the first RNG draw is the target selection).
        first_target = vc_ids[random.Random(seed).randrange(len(vc_ids))]
        adversary.block_link(voter.node_id, first_target)
        voter.start_voting()
        network.run_until_idle()
        assert voter.current_target != first_target or voter.receipt is not None
        assert first_target in voter.blacklist
        assert voter.attempts >= 2
        assert voter.receipt is not None and voter.receipt_valid
