"""Fault-injection tests: the protocol guarantees survive Byzantine components.

Each test runs a complete election with one or more components replaced by a
Byzantine variant, staying within the paper's fault thresholds
(fv < Nv/3, fb < Nb/2, ft = Nt - ht), and checks that liveness, safety and
the published result are unaffected.
"""

import pytest

from repro.core.byzantine import (
    CorruptTrustee,
    EquivocatingVoteCollector,
    ShareCorruptingVoteCollector,
    SilentVoteCollector,
    WithholdingBulletinBoard,
)
from repro.core.coordinator import ElectionCoordinator
from repro.core.election import ElectionParameters


def run_faulty_election(vc_classes=None, bb_classes=None, trustee_classes=None, seed=41,
                        num_trustees=3, trustee_threshold=2):
    params = ElectionParameters.small_test_election(
        num_voters=3, num_options=2, num_vc=4, num_bb=3,
        num_trustees=num_trustees, trustee_threshold=trustee_threshold,
        election_end=300.0,
    )
    coordinator = ElectionCoordinator(
        params,
        seed=seed,
        vc_node_classes=vc_classes or {},
        bb_node_classes=bb_classes or {},
        trustee_classes=trustee_classes or {},
    )
    choices = ["option-1", "option-2", "option-1"]
    return coordinator.run_election(choices, voter_patience=10.0)


class TestByzantineVoteCollectors:
    @pytest.fixture(scope="class")
    def silent_outcome(self):
        return run_faulty_election(vc_classes={"VC-2": SilentVoteCollector})

    def test_silent_vc_does_not_block_receipts(self, silent_outcome):
        assert silent_outcome.receipts_obtained == 3
        assert silent_outcome.all_receipts_valid

    def test_silent_vc_does_not_change_tally(self, silent_outcome):
        assert silent_outcome.tally.as_dict() == {"option-1": 2, "option-2": 1}

    def test_silent_vc_audit_passes(self, silent_outcome):
        assert silent_outcome.audit_report.passed

    def test_honest_nodes_agree_despite_silent_peer(self, silent_outcome):
        honest = [vc for vc in silent_outcome.vote_collectors if vc.node_id != "VC-2"]
        vote_sets = {vc.final_vote_set for vc in honest}
        assert len(vote_sets) == 1

    @pytest.fixture(scope="class")
    def corrupting_outcome(self):
        return run_faulty_election(vc_classes={"VC-1": ShareCorruptingVoteCollector}, seed=43)

    def test_corrupted_shares_rejected_receipts_still_issued(self, corrupting_outcome):
        assert corrupting_outcome.receipts_obtained == 3
        assert corrupting_outcome.all_receipts_valid

    def test_corrupted_shares_do_not_affect_tally(self, corrupting_outcome):
        assert corrupting_outcome.tally.as_dict() == {"option-1": 2, "option-2": 1}

    @pytest.fixture(scope="class")
    def equivocating_outcome(self):
        return run_faulty_election(vc_classes={"VC-3": EquivocatingVoteCollector}, seed=47)

    def test_equivocating_vc_cannot_break_agreement(self, equivocating_outcome):
        honest = [vc for vc in equivocating_outcome.vote_collectors if vc.node_id != "VC-3"]
        vote_sets = {vc.final_vote_set for vc in honest}
        assert len(vote_sets) == 1
        assert len(next(iter(vote_sets))) == 3

    def test_equivocating_vc_does_not_change_result(self, equivocating_outcome):
        assert equivocating_outcome.tally.as_dict() == {"option-1": 2, "option-2": 1}
        assert equivocating_outcome.audit_report.passed


class TestByzantineBulletinBoard:
    @pytest.fixture(scope="class")
    def withholding_outcome(self):
        return run_faulty_election(bb_classes={"BB-1": WithholdingBulletinBoard}, seed=53)

    def test_majority_read_masks_withholding_node(self, withholding_outcome):
        assert withholding_outcome.tally is not None
        assert withholding_outcome.tally.as_dict() == {"option-1": 2, "option-2": 1}

    def test_audit_passes_despite_withholding_node(self, withholding_outcome):
        assert withholding_outcome.audit_report.passed

    def test_honest_bb_nodes_agree(self, withholding_outcome):
        honest = [bb for bb in withholding_outcome.bb_nodes if bb.node_id != "BB-1"]
        tallies = {repr(bb.result.tally) for bb in honest}
        assert len(tallies) == 1


class TestByzantineTrustee:
    def test_corrupt_tally_share_is_detected_not_accepted(self):
        """With only ht = Nt submissions available and one corrupted, the
        combined opening fails verification: the BB must refuse to publish a
        wrong tally rather than silently accept it."""
        params = ElectionParameters.small_test_election(
            num_voters=3, num_options=2, num_vc=4, num_bb=3,
            num_trustees=3, trustee_threshold=3, election_end=300.0,
        )
        coordinator = ElectionCoordinator(
            params, seed=59, trustee_classes={"T-0": CorruptTrustee}
        )
        with pytest.raises(ValueError):
            coordinator.run_election(["option-1", "option-2", "option-1"],
                                     voter_patience=10.0)

    def test_corrupt_trustee_masked_when_threshold_met_by_honest(self):
        """With ht = 2 of 3, the two honest trustees suffice; the corrupted
        share never has to be used if the honest quorum submits first."""
        outcome = run_faulty_election(
            trustee_classes={"T-2": CorruptTrustee},
            num_trustees=3, trustee_threshold=2, seed=61,
        )
        # The BB accepts the first ht submissions it can verify; since the two
        # honest trustees are processed before the corrupt one in this run,
        # the published tally is correct.
        assert outcome.tally is not None
        assert outcome.tally.as_dict() == {"option-1": 2, "option-2": 1}
